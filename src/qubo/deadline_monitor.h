#ifndef QJO_QUBO_DEADLINE_MONITOR_H_
#define QJO_QUBO_DEADLINE_MONITOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace qjo {

/// Turns wall-clock deadlines into cooperative stop-token flips. One
/// monitor thread watches any number of armed (token, deadline) pairs and
/// stores `true` into each token when its deadline passes; the stochastic
/// solvers observe the token between sweeps through SolverControl::stop
/// and wind down with whatever state they reached.
///
/// This is the shared deadline plumbing of the serving layer: instead of
/// one watchdog thread per in-flight request (the portfolio race's
/// private watchdog is fine for one race at a time, but a service with
/// hundreds of concurrent deadlines would burn a thread each), every
/// request arms the same monitor.
///
/// Contracts:
///  * Tokens are fired with `memory_order_release` stores while the
///    monitor's mutex is held. Disarm() acquires the same mutex, so after
///    Disarm(id) returns the monitor will never touch that token again —
///    the caller may immediately destroy it. (A token may still have been
///    fired just *before* the Disarm; callers treat "fired but solve
///    already done" as a no-op.)
///  * Arm() never blocks behind a firing in progress for longer than the
///    token stores themselves (the monitor holds the mutex only to scan
///    and fire, never while sleeping).
///  * A token armed with a deadline already in the past fires on the
///    monitor's next wakeup (immediately scheduled).
class DeadlineMonitor {
 public:
  using Clock = std::chrono::steady_clock;

  DeadlineMonitor();
  ~DeadlineMonitor();

  DeadlineMonitor(const DeadlineMonitor&) = delete;
  DeadlineMonitor& operator=(const DeadlineMonitor&) = delete;

  /// Registers `token` to be set at `deadline`. The token must stay alive
  /// until Disarm() on the returned id. Ids are process-unique and never
  /// reused.
  uint64_t Arm(std::atomic<bool>* token, Clock::time_point deadline);

  /// Convenience overload: deadline `ms` milliseconds from now.
  uint64_t ArmAfterMs(std::atomic<bool>* token, double ms);

  /// Withdraws an armed entry. Safe to call with an id that already
  /// fired (the entry is gone either way). After return the monitor
  /// holds no reference to the token.
  void Disarm(uint64_t id);

  /// Entries currently armed (fired entries are removed as they fire).
  size_t armed() const;

  /// Cumulative number of tokens fired by deadline expiry.
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t id = 0;
    Clock::time_point deadline;
    std::atomic<bool>* token = nullptr;
  };

  void Loop(std::stop_token stop);

  mutable std::mutex mutex_;
  std::condition_variable_any wakeup_;
  std::vector<Entry> entries_;  ///< unordered; scans are O(armed), tiny
  /// Bumped by every Arm (under mutex_) so the loop's waits can detect a
  /// newly-armed, possibly-earlier deadline and recompute their sleep.
  uint64_t generation_ = 0;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> fired_{0};
  std::jthread thread_;  ///< last member: joins before the rest
};

}  // namespace qjo

#endif  // QJO_QUBO_DEADLINE_MONITOR_H_

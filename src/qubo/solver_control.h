#ifndef QJO_QUBO_SOLVER_CONTROL_H_
#define QJO_QUBO_SOLVER_CONTROL_H_

#include <atomic>

namespace qjo {

class ThreadPool;
class TraceRecorder;
class MetricsRegistry;

/// Shared runtime-control surface of the stochastic QUBO solvers (SA,
/// tabu, SQA). Extracted from the formerly duplicated
/// parallelism/pool/stop fields of SaOptions/TabuOptions/SqaOptions so
/// the portfolio orchestrator and the observability layer wire through
/// one struct instead of three copies. (The orchestration layers above
/// the solvers consolidate the same knobs, plus a wall-clock deadline,
/// into util/run_context.h's RunContext.)
///
/// Nothing here is owned: pool, stop, trace, and metrics must outlive
/// the solver call they are passed to.
struct SolverControl {
  /// Threads used for the solver's per-read/restart loop (caller
  /// included); 1 = serial. Results are bit-identical for every value:
  /// each read draws from its own forked RNG stream and lands in its own
  /// result slot.
  int parallelism = 1;

  /// Optional externally-owned pool shared across solver calls (e.g. by
  /// OptimizeJoinOrderBatch or the portfolio). Null = create a transient
  /// pool on demand when parallelism > 1.
  ThreadPool* pool = nullptr;

  /// Optional cooperative stop token, checked between sweeps/iterations:
  /// once set, every read finishes its current unit and returns whatever
  /// state it reached (a truncated but valid solution). Null = run the
  /// full schedule. While the token stays unset the solver's output is
  /// bit-identical to a run without one; once it fires, results depend
  /// on how far each read got — callers that need determinism must bound
  /// the run by sweeps, not by cancellation.
  const std::atomic<bool>* stop = nullptr;

  /// Optional span recorder (null-sink default): when attached, the
  /// solver records a span per call and per read/restart. Never affects
  /// results.
  TraceRecorder* trace = nullptr;

  /// Optional metrics registry (null-sink default): when attached, the
  /// solver publishes its internal counters (sweeps, proposals, accepts,
  /// restarts, evictions, slice flips). Never affects results.
  MetricsRegistry* metrics = nullptr;
};

}  // namespace qjo

#endif  // QJO_QUBO_SOLVER_CONTROL_H_

#include "qubo/ising.h"

#include <cmath>

#include "util/check.h"

namespace qjo {

double IsingModel::Energy(const std::vector<int>& spins) const {
  QJO_CHECK_EQ(static_cast<int>(spins.size()), num_spins());
  double energy = offset;
  for (int i = 0; i < num_spins(); ++i) {
    energy += h[i] * static_cast<double>(spins[i]);
  }
  for (const auto& [i, j, w] : couplings) {
    energy += w * static_cast<double>(spins[i] * spins[j]);
  }
  return energy;
}

double IsingModel::MaxAbsCoefficient() const {
  double max_abs = 0.0;
  for (double v : h) max_abs = std::max(max_abs, std::abs(v));
  for (const auto& [i, j, w] : couplings) {
    (void)i;
    (void)j;
    max_abs = std::max(max_abs, std::abs(w));
  }
  return max_abs;
}

IsingModel QuboToIsing(const Qubo& qubo) {
  const QuboCsr& csr = qubo.Csr();
  const int n = csr.num_variables();
  IsingModel ising;
  ising.h.assign(n, 0.0);
  ising.offset = csr.offset;
  // x_i = (1 - z_i)/2:
  //   c_i x_i            -> c_i/2 - (c_i/2) z_i
  //   c_ij x_i x_j       -> c_ij/4 (1 - z_i - z_j + z_i z_j)
  for (int i = 0; i < n; ++i) {
    ising.offset += csr.linear[i] / 2.0;
    ising.h[i] -= csr.linear[i] / 2.0;
  }
  // Upper triangle of the CSR in row-major order — the same (i, j)
  // sequence (and therefore the same floating-point accumulation order)
  // as the sorted QuadraticTerms() list it replaces.
  ising.couplings.reserve(csr.num_entries() / 2);
  for (int i = 0; i < n; ++i) {
    for (int32_t k = csr.offsets[i]; k < csr.offsets[i + 1]; ++k) {
      const int j = csr.columns[k];
      if (j < i) continue;
      const double w = csr.weights[k];
      ising.offset += w / 4.0;
      ising.h[i] -= w / 4.0;
      ising.h[j] -= w / 4.0;
      ising.couplings.emplace_back(i, j, w / 4.0);
    }
  }
  return ising;
}

std::vector<int> SpinsToBits(const std::vector<int>& spins) {
  std::vector<int> bits(spins.size());
  for (size_t i = 0; i < spins.size(); ++i) {
    QJO_CHECK(spins[i] == 1 || spins[i] == -1);
    bits[i] = spins[i] == 1 ? 0 : 1;
  }
  return bits;
}

std::vector<int> BitsToSpins(const std::vector<int>& bits) {
  std::vector<int> spins(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    QJO_CHECK(bits[i] == 0 || bits[i] == 1);
    spins[i] = bits[i] == 0 ? 1 : -1;
  }
  return spins;
}

}  // namespace qjo

#ifndef QJO_QUBO_QUBO_CSR_H_
#define QJO_QUBO_QUBO_CSR_H_

#include <cstdint>
#include <tuple>
#include <vector>

namespace qjo {

class Qubo;
struct IsingModel;

/// Flat compressed-sparse-row view of a QUBO's problem graph: one
/// offsets/columns/weights triple instead of a vector-of-vectors of
/// pairs. Every coupling {i, j} appears twice (row i and row j), so a row
/// scan visits the full neighbourhood of a variable with unit-stride
/// loads. Row entries keep the order of the sorted (i < j, lexicographic)
/// coupling list, which pins the floating-point summation order of every
/// kernel that scans a row. Read-only after construction; one instance is
/// shared by all reads of a parallel solve.
///
/// This is the layout consumed by the SA/tabu/SQA hot loops,
/// `Qubo::Energy`, the Ising conversion, and the QAOA cost-spectrum
/// sweep (see DESIGN.md, "Kernel memory model").
struct QuboCsr {
  std::vector<double> linear;    ///< per-variable linear coefficient
  std::vector<int32_t> offsets;  ///< size n+1; row i spans [offsets[i], offsets[i+1])
  std::vector<int32_t> columns;  ///< neighbour variable per entry (2 per coupling)
  std::vector<double> weights;   ///< coupling weight per entry
  double offset = 0.0;           ///< constant energy offset

  int num_variables() const { return static_cast<int>(linear.size()); }
  int num_entries() const { return static_cast<int>(columns.size()); }
  int degree(int i) const { return offsets[i + 1] - offsets[i]; }

  /// Builds the CSR view of `qubo`. Prefer `Qubo::Csr()` (cached) unless
  /// a detached copy is required.
  static QuboCsr FromQubo(const Qubo& qubo);

  /// Builds from explicit terms: `terms` holds (i, j, w) with i < j; the
  /// given order fixes the per-row entry order.
  static QuboCsr FromTerms(int num_variables, const std::vector<double>& linear,
                           const std::vector<std::tuple<int, int, double>>& terms,
                           double offset);

  /// Energy f(x) of an assignment: offset + sum_i x_i (linear_i +
  /// sum_{j > i, x_j} w_ij), accumulated in row-major order.
  double Energy(const std::vector<int>& x) const;

  /// Energy change caused by flipping bit `i` of `x` — the O(degree)
  /// reference scan. The incremental kernels reproduce this value through
  /// persistent local fields instead.
  double FlipDelta(const std::vector<int>& x, int i) const;

  /// Persistent local fields h_i = linear_i + sum_j w_ij x_j for the
  /// state `x`. With these, a flip proposal costs O(1):
  /// delta_i = x_i ? -h_i : h_i.
  std::vector<double> LocalFields(const std::vector<int>& x) const;

  /// Flips x[i] and folds the change into the neighbours' local fields
  /// (O(degree)). `fields` must have been produced by LocalFields(x) and
  /// kept in sync across flips; fields[i] itself is untouched (no
  /// self-coupling), which is what flips the sign of delta_i.
  void ApplyFlip(int i, std::vector<int>& x, std::vector<double>& fields) const;
};

/// CSR view of an Ising model's coupling graph. Entries additionally
/// carry the index of the originating coupling in
/// `IsingModel::couplings`, so per-read perturbed weights (the SQA ICE
/// noise model) can be looked up through the shared structure without
/// rebuilding it per read. Per-row entry order follows the coupling-list
/// order, matching the adjacency-list construction it replaces.
struct IsingCsr {
  std::vector<double> h;         ///< per-spin field
  std::vector<int32_t> offsets;  ///< size n+1
  std::vector<int32_t> columns;  ///< neighbour spin per entry
  std::vector<int32_t> edge_ids; ///< index into IsingModel::couplings
  std::vector<double> weights;   ///< unperturbed J per entry
  double offset = 0.0;

  int num_spins() const { return static_cast<int>(h.size()); }
  int degree(int i) const { return offsets[i + 1] - offsets[i]; }

  static IsingCsr FromIsing(const IsingModel& ising);
};

}  // namespace qjo

#endif  // QJO_QUBO_QUBO_CSR_H_

#include "qubo/qubo_csr.h"

#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "util/check.h"

namespace qjo {
namespace {

/// Counting-sort fill of a symmetric CSR: `degrees` holds per-row entry
/// counts; returns the offsets array and resets `degrees` to per-row
/// write cursors.
std::vector<int32_t> BuildOffsets(std::vector<int32_t>& degrees) {
  std::vector<int32_t> offsets(degrees.size() + 1, 0);
  for (size_t i = 0; i < degrees.size(); ++i) {
    offsets[i + 1] = offsets[i] + degrees[i];
  }
  for (size_t i = 0; i < degrees.size(); ++i) degrees[i] = offsets[i];
  return offsets;
}

}  // namespace

QuboCsr QuboCsr::FromQubo(const Qubo& qubo) {
  std::vector<double> linear(qubo.num_variables());
  for (int i = 0; i < qubo.num_variables(); ++i) linear[i] = qubo.linear(i);
  return FromTerms(qubo.num_variables(), linear, qubo.QuadraticTerms(),
                   qubo.offset());
}

QuboCsr QuboCsr::FromTerms(
    int num_variables, const std::vector<double>& linear,
    const std::vector<std::tuple<int, int, double>>& terms, double offset) {
  QJO_CHECK_EQ(static_cast<int>(linear.size()), num_variables);
  QuboCsr csr;
  csr.linear = linear;
  csr.offset = offset;
  std::vector<int32_t> cursor(num_variables, 0);
  for (const auto& [i, j, w] : terms) {
    (void)w;
    QJO_CHECK_NE(i, j);
    ++cursor[i];
    ++cursor[j];
  }
  csr.offsets = BuildOffsets(cursor);
  csr.columns.resize(csr.offsets.back());
  csr.weights.resize(csr.offsets.back());
  for (const auto& [i, j, w] : terms) {
    csr.columns[cursor[i]] = j;
    csr.weights[cursor[i]++] = w;
    csr.columns[cursor[j]] = i;
    csr.weights[cursor[j]++] = w;
  }
  return csr;
}

double QuboCsr::Energy(const std::vector<int>& x) const {
  QJO_CHECK_EQ(static_cast<int>(x.size()), num_variables());
  double energy = offset;
  for (int i = 0; i < num_variables(); ++i) {
    if (!x[i]) continue;
    energy += linear[i];
    for (int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const int32_t j = columns[k];
      if (j > i && x[j]) energy += weights[k];
    }
  }
  return energy;
}

double QuboCsr::FlipDelta(const std::vector<int>& x, int i) const {
  double field = linear[i];
  for (int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
    if (x[columns[k]]) field += weights[k];
  }
  return x[i] ? -field : field;
}

std::vector<double> QuboCsr::LocalFields(const std::vector<int>& x) const {
  QJO_CHECK_EQ(static_cast<int>(x.size()), num_variables());
  std::vector<double> fields(linear);
  for (int i = 0; i < num_variables(); ++i) {
    double field = fields[i];
    for (int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      if (x[columns[k]]) field += weights[k];
    }
    fields[i] = field;
  }
  return fields;
}

void QuboCsr::ApplyFlip(int i, std::vector<int>& x,
                        std::vector<double>& fields) const {
  x[i] ^= 1;
  if (x[i]) {
    for (int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      fields[columns[k]] += weights[k];
    }
  } else {
    for (int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      fields[columns[k]] -= weights[k];
    }
  }
}

IsingCsr IsingCsr::FromIsing(const IsingModel& ising) {
  IsingCsr csr;
  csr.h = ising.h;
  csr.offset = ising.offset;
  std::vector<int32_t> cursor(ising.num_spins(), 0);
  for (const auto& [i, j, w] : ising.couplings) {
    (void)w;
    QJO_CHECK_NE(i, j);
    ++cursor[i];
    ++cursor[j];
  }
  csr.offsets = BuildOffsets(cursor);
  csr.columns.resize(csr.offsets.back());
  csr.edge_ids.resize(csr.offsets.back());
  csr.weights.resize(csr.offsets.back());
  for (size_t e = 0; e < ising.couplings.size(); ++e) {
    const auto& [i, j, w] = ising.couplings[e];
    csr.columns[cursor[i]] = j;
    csr.edge_ids[cursor[i]] = static_cast<int32_t>(e);
    csr.weights[cursor[i]++] = w;
    csr.columns[cursor[j]] = i;
    csr.edge_ids[cursor[j]] = static_cast<int32_t>(e);
    csr.weights[cursor[j]++] = w;
  }
  return csr;
}

}  // namespace qjo

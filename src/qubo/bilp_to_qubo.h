#ifndef QJO_QUBO_BILP_TO_QUBO_H_
#define QJO_QUBO_BILP_TO_QUBO_H_

#include "lp/bilp.h"
#include "qubo/qubo.h"
#include "util/statusor.h"

namespace qjo {

/// Options for the Lucas-style BILP -> QUBO transformation (Eq. (10)).
struct QuboConversionOptions {
  /// Discretisation precision omega: constraint coefficients and right-hand
  /// sides are rounded to multiples of omega before squaring (Sec. 3.4,
  /// "we round the coefficients S_ji according to the discretisation
  /// precision"), and the penalty weight is A = C / omega^2 + epsilon.
  double omega = 1.0;

  /// Objective weight B of Eq. (10).
  double objective_weight = 1.0;

  /// The "small value" epsilon added on top of C / omega^2.
  double epsilon = 1.0;

  /// If >= 0, overrides the derived penalty weight A (for ablations of the
  /// paper's weight rule).
  double penalty_weight_override = -1.0;
};

/// A QUBO instance produced from a BILP model, retaining what is needed to
/// map samples back (Sec. 3.5): the variable count split and the penalty
/// weight (to judge whether a sample violates any BILP constraint).
struct QuboEncoding {
  Qubo qubo;
  double penalty_weight = 0.0;    ///< A in Eq. (10)
  double objective_weight = 1.0;  ///< B in Eq. (10)
  int num_problem_variables = 0;  ///< prefix of x that encodes the JO model

  /// Minimum possible energy contribution of H_A (0 for a fully feasible
  /// assignment); a sample with energy penalty above ~A*omega^2/2 is
  /// guaranteed to violate some BILP constraint.
  double min_penalty = 0.0;
};

/// Converts a BILP model into QUBO form: H = A * sum_j (b_j - S_j.x)^2 +
/// B * c.x. The minimum of H corresponds to a feasible, optimal BILP
/// assignment whenever one exists.
StatusOr<QuboEncoding> ConvertBilpToQubo(const BilpModel& bilp,
                                         const QuboConversionOptions& options);

}  // namespace qjo

#endif  // QJO_QUBO_BILP_TO_QUBO_H_

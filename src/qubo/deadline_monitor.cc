#include "qubo/deadline_monitor.h"

#include <algorithm>

namespace qjo {

DeadlineMonitor::DeadlineMonitor()
    : thread_([this](std::stop_token stop) { Loop(std::move(stop)); }) {}

DeadlineMonitor::~DeadlineMonitor() {
  thread_.request_stop();
  wakeup_.notify_all();
  // jthread joins on destruction; no token is touched afterwards.
}

uint64_t DeadlineMonitor::Arm(std::atomic<bool>* token,
                              Clock::time_point deadline) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    entries_.push_back(Entry{id, deadline, token});
    ++generation_;
  }
  // Always wake the loop: the new deadline may be earlier than the one
  // it is currently sleeping towards.
  wakeup_.notify_all();
  return id;
}

uint64_t DeadlineMonitor::ArmAfterMs(std::atomic<bool>* token, double ms) {
  return Arm(token, Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double, std::milli>(
                                           std::max(ms, 0.0))));
}

void DeadlineMonitor::Disarm(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Firing happens under this mutex too, so once we hold it the monitor
  // is either done with the token or has not reached it; erasing the
  // entry here closes both paths.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

size_t DeadlineMonitor::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void DeadlineMonitor::Loop(std::stop_token stop) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop.stop_requested()) {
    const Clock::time_point now = Clock::now();
    // Fire everything due, then find the next deadline to sleep towards.
    Clock::time_point next = Clock::time_point::max();
    for (size_t i = 0; i < entries_.size();) {
      if (entries_[i].deadline <= now) {
        entries_[i].token->store(true, std::memory_order_release);
        fired_.fetch_add(1, std::memory_order_relaxed);
        entries_[i] = entries_.back();
        entries_.pop_back();
      } else {
        next = std::min(next, entries_[i].deadline);
        ++i;
      }
    }
    // Sleep towards the earliest armed deadline (or indefinitely when
    // nothing is armed); a new Arm bumps the generation and wakes us to
    // recompute, so an earlier deadline is never slept through.
    const uint64_t gen = generation_;
    const auto rearmed = [this, gen] { return generation_ != gen; };
    if (next == Clock::time_point::max()) {
      wakeup_.wait(lock, stop, rearmed);
    } else {
      wakeup_.wait_until(lock, stop, next, rearmed);
    }
  }
}

}  // namespace qjo

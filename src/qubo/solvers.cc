#include "qubo/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace qjo {
namespace {

/// Dense adjacency representation used by both solvers for O(degree)
/// energy-delta computation.
struct LocalFieldModel {
  explicit LocalFieldModel(const Qubo& qubo)
      : linear(qubo.num_variables()),
        neighbors(qubo.num_variables()) {
    for (int i = 0; i < qubo.num_variables(); ++i) linear[i] = qubo.linear(i);
    for (const auto& [i, j, w] : qubo.QuadraticTerms()) {
      neighbors[i].emplace_back(j, w);
      neighbors[j].emplace_back(i, w);
    }
  }

  /// Energy change caused by flipping bit `i` of `x`.
  double FlipDelta(const std::vector<int>& x, int i) const {
    double field = linear[i];
    for (const auto& [j, w] : neighbors[i]) {
      if (x[j]) field += w;
    }
    return x[i] ? -field : field;
  }

  std::vector<double> linear;
  std::vector<std::vector<std::pair<int, double>>> neighbors;
};

}  // namespace

StatusOr<QuboSolution> SolveQuboBruteForce(const Qubo& qubo,
                                           int max_variables) {
  const int n = qubo.num_variables();
  if (n == 0) return Status::InvalidArgument("empty QUBO");
  if (n > max_variables) {
    return Status::ResourceExhausted("too many variables for brute force");
  }
  LocalFieldModel model(qubo);
  std::vector<int> x(n, 0);
  double energy = qubo.offset();
  QuboSolution best{x, energy};
  // Gray-code walk: state k differs from k-1 in bit ctz(k).
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t k = 1; k < total; ++k) {
    const int bit = static_cast<int>(__builtin_ctzll(k));
    energy += model.FlipDelta(x, bit);
    x[bit] ^= 1;
    if (energy < best.energy) {
      best.assignment = x;
      best.energy = energy;
    }
  }
  return best;
}

std::vector<QuboSolution> SolveQuboSimulatedAnnealing(const Qubo& qubo,
                                                      const SaOptions& options,
                                                      Rng& rng) {
  QJO_CHECK_GT(qubo.num_variables(), 0);
  QJO_CHECK_GT(options.num_reads, 0);
  QJO_CHECK_GT(options.sweeps_per_read, 0);
  LocalFieldModel model(qubo);
  const int n = qubo.num_variables();

  double t_initial = options.initial_temperature;
  if (t_initial <= 0.0) t_initial = std::max(qubo.MaxAbsCoefficient(), 1.0);
  double t_final = options.final_temperature;
  if (t_final <= 0.0) t_final = 1e-3 * t_initial;
  const double cooling =
      std::pow(t_final / t_initial,
               1.0 / static_cast<double>(options.sweeps_per_read - 1 + 1));

  std::vector<QuboSolution> reads;
  reads.reserve(options.num_reads);
  for (int read = 0; read < options.num_reads; ++read) {
    std::vector<int> x(n);
    for (int i = 0; i < n; ++i) x[i] = rng.Bernoulli(0.5) ? 1 : 0;
    double energy = qubo.Energy(x);
    double temperature = t_initial;
    for (int sweep = 0; sweep < options.sweeps_per_read; ++sweep) {
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(x, i);
        if (delta <= 0.0 ||
            rng.UniformDouble() < std::exp(-delta / temperature)) {
          x[i] ^= 1;
          energy += delta;
        }
      }
      temperature *= cooling;
    }
    reads.push_back(QuboSolution{std::move(x), energy});
  }
  std::sort(reads.begin(), reads.end(),
            [](const QuboSolution& a, const QuboSolution& b) {
              return a.energy < b.energy;
            });
  return reads;
}

std::vector<QuboSolution> SolveQuboTabuSearch(const Qubo& qubo,
                                              const TabuOptions& options,
                                              Rng& rng) {
  QJO_CHECK_GT(qubo.num_variables(), 0);
  QJO_CHECK_GT(options.num_restarts, 0);
  QJO_CHECK_GT(options.iterations_per_restart, 0);
  const int n = qubo.num_variables();
  const int tenure =
      options.tenure > 0
          ? options.tenure
          : static_cast<int>(std::sqrt(static_cast<double>(n))) + 10;
  LocalFieldModel model(qubo);

  std::vector<QuboSolution> restarts;
  restarts.reserve(options.num_restarts);
  for (int restart = 0; restart < options.num_restarts; ++restart) {
    std::vector<int> x(n);
    for (int i = 0; i < n; ++i) x[i] = rng.Bernoulli(0.5) ? 1 : 0;
    double energy = qubo.Energy(x);
    QuboSolution incumbent{x, energy};
    std::vector<int> tabu_until(n, -1);
    for (int it = 0; it < options.iterations_per_restart; ++it) {
      int best_flip = -1;
      double best_delta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(x, i);
        const bool tabu = tabu_until[i] > it;
        // Aspiration: a tabu move is allowed if it beats the incumbent.
        if (tabu && energy + delta >= incumbent.energy - 1e-12) continue;
        if (delta < best_delta ||
            (delta == best_delta && rng.Bernoulli(0.5))) {
          best_delta = delta;
          best_flip = i;
        }
      }
      if (best_flip < 0) break;  // everything tabu and non-aspiring
      x[best_flip] ^= 1;
      energy += best_delta;
      tabu_until[best_flip] = it + tenure;
      if (energy < incumbent.energy) incumbent = QuboSolution{x, energy};
    }
    restarts.push_back(std::move(incumbent));
  }
  std::sort(restarts.begin(), restarts.end(),
            [](const QuboSolution& a, const QuboSolution& b) {
              return a.energy < b.energy;
            });
  return restarts;
}

const QuboSolution& BestSolution(const std::vector<QuboSolution>& solutions) {
  QJO_CHECK(!solutions.empty());
  const QuboSolution* best = &solutions[0];
  for (const QuboSolution& s : solutions) {
    if (s.energy < best->energy) best = &s;
  }
  return *best;
}

}  // namespace qjo

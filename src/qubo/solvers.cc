#include "qubo/solvers.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "obs/obs.h"
#include "qubo/metropolis.h"
#include "qubo/qubo_csr.h"
#include "util/check.h"
#include "util/simd.h"

namespace qjo {
namespace {

/// Replicas per SoA group of the kBatched kernel: 16 doubles per plane
/// row is two AVX-512 (four AVX2) vectors, and a 128-variable problem's
/// field planes stay L1/L2-resident (16 KiB). Groups are carved from the
/// read index space in fixed chunks, so group membership — and therefore
/// every result — is independent of the parallelism level.
constexpr int kReplicaBatch = 16;

/// At or below this many accepted lanes the neighbour update walks the
/// accepted lanes' strided plane entries directly instead of streaming
/// whole vectors; at the cold end of the schedule acceptances are sparse
/// and the full-width update would mostly multiply by 0.
constexpr int kScalarUpdateLanes = 2;

/// Resolves the pool to run a per-read loop on: the caller-supplied
/// shared pool if any, a transient local pool when parallelism asks for
/// one, or null (serial) otherwise.
ThreadPool* ResolvePool(ThreadPool* shared, int parallelism,
                        std::optional<ThreadPool>& local) {
  if (shared != nullptr) return shared;
  if (parallelism > 1) {
    local.emplace(parallelism);
    return &*local;
  }
  return nullptr;
}

/// True once a caller-supplied stop token has been set. The relaxed load
/// is enough: the token only gates how much work is done, never which
/// memory a read observes (each read owns its state and result slot).
bool StopRequested(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}

void SortByEnergy(std::vector<QuboSolution>& solutions) {
  std::sort(solutions.begin(), solutions.end(),
            [](const QuboSolution& a, const QuboSolution& b) {
              return a.energy < b.energy;
            });
}

/// One SoA group of the kBatched SA kernel: `lanes` replicas (reads
/// first_read .. first_read+lanes-1) anneal in lock step. Each variable i
/// owns one plane of `lanes` consecutive doubles (fields) / bytes
/// (state), so an accepted flip of i updates every replica's neighbour
/// fields with vector lanes. Determinism: lane r replays scalar read
/// first_read+r exactly — same Fork stream, same draw sequence (the
/// Metropolis filter only skips exp calls, never draws), and the
/// dir[r]=0 lanes of the vector update add +-0.0, which can never change
/// a later delta comparison — so results are bit-identical to
/// kIncremental at any parallelism.
void RunSaBatchedGroup(const QuboCsr& csr, const SaOptions& options,
                       const SaSchedule& schedule, const Rng& base, int n,
                       int64_t first_read, int lanes,
                       std::vector<QuboSolution>& reads) {
  const SolverControl& control = options.control;
  const SimdOps& simd = Simd();
  const int64_t L = lanes;

  std::vector<Rng> rngs;
  rngs.reserve(static_cast<size_t>(lanes));
  for (int r = 0; r < lanes; ++r) {
    rngs.push_back(base.Fork(static_cast<uint64_t>(first_read + r)));
  }

  std::vector<uint8_t> x(static_cast<size_t>(n) * L);
  std::vector<double> fields(static_cast<size_t>(n) * L);
  std::vector<double> energy(static_cast<size_t>(lanes));
  {
    // Per-lane init replays the scalar read's draw order exactly, then
    // scatters state and fields into the planes.
    std::vector<int> lane_x(n);
    for (int r = 0; r < lanes; ++r) {
      for (int i = 0; i < n; ++i) lane_x[i] = rngs[r].Bernoulli(0.5) ? 1 : 0;
      energy[r] = csr.Energy(lane_x);
      const std::vector<double> lane_fields = csr.LocalFields(lane_x);
      for (int i = 0; i < n; ++i) {
        x[static_cast<size_t>(i) * L + r] = static_cast<uint8_t>(lane_x[i]);
        fields[static_cast<size_t>(i) * L + r] = lane_fields[i];
      }
    }
  }

  std::vector<double> dir(static_cast<size_t>(lanes));
  std::vector<int> accepted_lane(static_cast<size_t>(lanes));
  uint64_t accepts = 0;
  double temperature = schedule.t_initial;
  MetropolisBands bands;
  int sweeps_run = 0;
  for (int sweep = 0; sweep < options.sweeps_per_read; ++sweep) {
    if (StopRequested(control.stop)) break;
    ++sweeps_run;
    bands.Prepare(temperature);
    for (int i = 0; i < n; ++i) {
      double* frow = &fields[static_cast<size_t>(i) * L];
      uint8_t* xrow = &x[static_cast<size_t>(i) * L];
      int num_accepted = 0;
      for (int r = 0; r < lanes; ++r) {
        const double delta = xrow[r] ? -frow[r] : frow[r];
        // Same accept rule (and same draw count) as the scalar kernel:
        // one uniform draw per uphill proposal.
        const bool accept =
            delta <= 0.0 || bands.UnderExp(rngs[r].UniformDouble(), -delta);
        if (accept) {
          xrow[r] ^= 1;
          energy[r] += delta;
          ++accepts;
          accepted_lane[num_accepted++] = r;
        }
      }
      if (num_accepted == 0) continue;
      const int32_t row_begin = csr.offsets[i];
      const int count = csr.offsets[i + 1] - row_begin;
      if (count == 0) continue;
      if (num_accepted <= kScalarUpdateLanes) {
        for (int a = 0; a < num_accepted; ++a) {
          const int r = accepted_lane[a];
          const double d = xrow[r] ? 1.0 : -1.0;  // exact d * w products
          for (int32_t k = row_begin; k < row_begin + count; ++k) {
            fields[static_cast<size_t>(csr.columns[k]) * L + r] +=
                d * csr.weights[k];
          }
        }
      } else {
        // dir is only materialised on the vector path, so rejected lanes
        // cost no stores at the cold end of the schedule.
        std::fill(dir.begin(), dir.begin() + lanes, 0.0);
        for (int a = 0; a < num_accepted; ++a) {
          const int r = accepted_lane[a];
          dir[static_cast<size_t>(r)] = xrow[r] ? 1.0 : -1.0;
        }
        simd.sa_row_update(fields.data(), csr.columns.data() + row_begin,
                           csr.weights.data() + row_begin, count, L,
                           dir.data());
      }
    }
    temperature *= schedule.cooling;
  }

  for (int r = 0; r < lanes; ++r) {
    std::vector<int> out(n);
    for (int i = 0; i < n; ++i) {
      out[i] = x[static_cast<size_t>(i) * L + r];
    }
    reads[static_cast<size_t>(first_read) + r] =
        QuboSolution{std::move(out), energy[r]};
  }
  if (control.metrics != nullptr) {
    // Totals match what `lanes` scalar reads would have recorded.
    control.metrics->Count("sa.reads", static_cast<uint64_t>(lanes));
    control.metrics->Count("sa.sweeps", static_cast<uint64_t>(lanes) *
                                            static_cast<uint64_t>(sweeps_run));
    control.metrics->Count("sa.proposals",
                           static_cast<uint64_t>(lanes) *
                               static_cast<uint64_t>(sweeps_run) *
                               static_cast<uint64_t>(n));
    control.metrics->Count("sa.accepts", accepts);
  }
}

}  // namespace

StatusOr<QuboSolution> SolveQuboBruteForce(const Qubo& qubo,
                                           int max_variables) {
  const int n = qubo.num_variables();
  if (n == 0) return Status::InvalidArgument("empty QUBO");
  // The Gray-code walk enumerates 2^n states in a uint64_t; n == 64 would
  // shift by the full word width (undefined behaviour), so the cap is
  // clamped to 63 regardless of what the caller asks for.
  const int effective_max = std::min(max_variables, 63);
  if (n > effective_max) {
    return Status::ResourceExhausted("too many variables for brute force");
  }
  const QuboCsr& csr = qubo.Csr();
  std::vector<int> x(n, 0);
  double energy = csr.offset;
  QuboSolution best{x, energy};
  // Gray-code walk: state k differs from k-1 in bit ctz(k). Every step
  // flips one bit, so the O(degree) reference scan is already optimal
  // here — persistent fields would pay the same O(degree) per step.
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t k = 1; k < total; ++k) {
    const int bit = static_cast<int>(__builtin_ctzll(k));
    energy += csr.FlipDelta(x, bit);
    x[bit] ^= 1;
    if (energy < best.energy) {
      best.assignment = x;
      best.energy = energy;
    }
  }
  return best;
}

SaSchedule ResolveSaSchedule(const Qubo& qubo, const SaOptions& options) {
  QJO_CHECK_GT(options.sweeps_per_read, 0);
  SaSchedule schedule;
  schedule.t_initial = options.initial_temperature > 0.0
                           ? options.initial_temperature
                           : std::max(qubo.MaxAbsCoefficient(), 1.0);
  schedule.t_final = options.final_temperature > 0.0
                         ? options.final_temperature
                         : 1e-3 * schedule.t_initial;
  // Geometric schedule over sweeps 0..s-1 ending exactly at t_final:
  // cooling^(s-1) = t_final / t_initial. A single sweep runs at t_initial
  // (there is no interval to cool over).
  schedule.cooling =
      options.sweeps_per_read > 1
          ? std::pow(schedule.t_final / schedule.t_initial,
                     1.0 / static_cast<double>(options.sweeps_per_read - 1))
          : 1.0;
  return schedule;
}

std::vector<QuboSolution> SolveQuboSimulatedAnnealing(const Qubo& qubo,
                                                      const SaOptions& options,
                                                      Rng& rng) {
  QJO_CHECK_GT(qubo.num_variables(), 0);
  QJO_CHECK_GT(options.num_reads, 0);
  QJO_CHECK_GT(options.sweeps_per_read, 0);
  // Materialise the CSR on the calling thread; the parallel reads below
  // only ever read it.
  const QuboCsr& csr = qubo.Csr();
  const int n = qubo.num_variables();
  const SaSchedule schedule = ResolveSaSchedule(qubo, options);
  const bool incremental = options.kernel == SolverKernel::kIncremental;

  // One draw from the shared generator keeps successive solver calls on
  // the same Rng independent; every read then forks stream `read` off the
  // resulting snapshot, so the set of reads is bit-identical for every
  // parallelism level and thread interleaving.
  const SolverControl& control = options.control;
  StageSpan solve_span(control.trace, "sa.solve");
  const Rng base(rng.Next());
  std::vector<QuboSolution> reads(options.num_reads);
  if (options.kernel == SolverKernel::kBatched) {
    // SoA replica groups: each task anneals up to kReplicaBatch reads in
    // lock step. Group boundaries depend only on the read index, so the
    // result set matches kIncremental bit for bit at any parallelism.
    const int64_t groups =
        (options.num_reads + kReplicaBatch - 1) / kReplicaBatch;
    const auto run_group = [&](int64_t group) {
      StageSpan group_span(control.trace, "sa.read_batch");
      const int64_t first_read = group * kReplicaBatch;
      const int lanes = static_cast<int>(std::min<int64_t>(
          kReplicaBatch, options.num_reads - first_read));
      RunSaBatchedGroup(csr, options, schedule, base, n, first_read, lanes,
                        reads);
    };
    std::optional<ThreadPool> local_pool;
    ParallelFor(ResolvePool(control.pool, control.parallelism, local_pool), 0,
                groups, run_group);
    SortByEnergy(reads);
    return reads;
  }
  const auto run_read = [&](int64_t read) {
    StageSpan read_span(control.trace, "sa.read");
    Rng read_rng = base.Fork(static_cast<uint64_t>(read));
    std::vector<int> x(n);
    for (int i = 0; i < n; ++i) x[i] = read_rng.Bernoulli(0.5) ? 1 : 0;
    double energy = csr.Energy(x);
    double temperature = schedule.t_initial;
    int sweeps_run = 0;
    uint64_t accepts = 0;
    if (incremental) {
      // Persistent local fields: delta_i = +-fields[i] per proposal,
      // neighbour updates only on accepted flips.
      std::vector<double> fields = csr.LocalFields(x);
      for (int sweep = 0; sweep < options.sweeps_per_read; ++sweep) {
        if (StopRequested(control.stop)) break;
        ++sweeps_run;
        for (int i = 0; i < n; ++i) {
          const double delta = x[i] ? -fields[i] : fields[i];
          if (delta <= 0.0 ||
              read_rng.UniformDouble() < std::exp(-delta / temperature)) {
            csr.ApplyFlip(i, x, fields);
            energy += delta;
            ++accepts;
          }
        }
        temperature *= schedule.cooling;
      }
    } else {
      for (int sweep = 0; sweep < options.sweeps_per_read; ++sweep) {
        if (StopRequested(control.stop)) break;
        ++sweeps_run;
        for (int i = 0; i < n; ++i) {
          const double delta = csr.FlipDelta(x, i);
          if (delta <= 0.0 ||
              read_rng.UniformDouble() < std::exp(-delta / temperature)) {
            x[i] ^= 1;
            energy += delta;
            ++accepts;
          }
        }
        temperature *= schedule.cooling;
      }
    }
    if (control.metrics != nullptr) {
      control.metrics->Count("sa.reads");
      control.metrics->Count("sa.sweeps", static_cast<uint64_t>(sweeps_run));
      control.metrics->Count(
          "sa.proposals", static_cast<uint64_t>(sweeps_run) *
                              static_cast<uint64_t>(n));
      control.metrics->Count("sa.accepts", accepts);
    }
    reads[read] = QuboSolution{std::move(x), energy};
  };
  std::optional<ThreadPool> local_pool;
  ParallelFor(ResolvePool(control.pool, control.parallelism, local_pool), 0,
              options.num_reads, run_read);
  SortByEnergy(reads);
  return reads;
}

std::vector<QuboSolution> SolveQuboTabuSearch(const Qubo& qubo,
                                              const TabuOptions& options,
                                              Rng& rng) {
  QJO_CHECK_GT(qubo.num_variables(), 0);
  QJO_CHECK_GT(options.num_restarts, 0);
  QJO_CHECK_GT(options.iterations_per_restart, 0);
  const int n = qubo.num_variables();
  const int tenure =
      options.tenure > 0
          ? options.tenure
          : static_cast<int>(std::sqrt(static_cast<double>(n))) + 10;
  const QuboCsr& csr = qubo.Csr();
  // Tabu has no batched variant: kBatched runs the incremental kernel.
  const bool incremental = options.kernel != SolverKernel::kReference;
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  const SolverControl& control = options.control;
  StageSpan solve_span(control.trace, "tabu.solve");
  const Rng base(rng.Next());
  std::vector<QuboSolution> restarts(options.num_restarts);
  const auto run_restart = [&](int64_t restart) {
    StageSpan restart_span(control.trace, "tabu.restart");
    Rng restart_rng = base.Fork(static_cast<uint64_t>(restart));
    std::vector<int> x(n);
    for (int i = 0; i < n; ++i) x[i] = restart_rng.Bernoulli(0.5) ? 1 : 0;
    double energy = csr.Energy(x);
    QuboSolution incumbent{x, energy};
    int iterations_run = 0;
    uint64_t moves = 0;
    uint64_t evictions = 0;
    std::vector<int> tabu_until(n, -1);
    // Incremental kernel: the delta cache is carried across iterations as
    // persistent local fields, and only the flipped variable's
    // neighbourhood is touched per move. Reference kernel: all n deltas
    // are recomputed by O(degree) scans every iteration.
    std::vector<double> fields;
    if (incremental) fields = csr.LocalFields(x);
    std::vector<double> deltas(n);
    for (int it = 0; it < options.iterations_per_restart; ++it) {
      if (StopRequested(control.stop)) break;
      ++iterations_run;
      double best_delta = kInfinity;
      int tie_count = 0;
      for (int i = 0; i < n; ++i) {
        deltas[i] =
            incremental ? (x[i] ? -fields[i] : fields[i]) : csr.FlipDelta(x, i);
        const bool tabu = tabu_until[i] > it;
        // Aspiration: a tabu move is allowed if it beats the incumbent.
        if (tabu && energy + deltas[i] >= incumbent.energy - 1e-12) {
          deltas[i] = kInfinity;  // mark ineligible for the pick scan
          continue;
        }
        if (deltas[i] < best_delta) {
          best_delta = deltas[i];
          tie_count = 1;
        } else if (deltas[i] == best_delta) {
          ++tie_count;
        }
      }
      if (tie_count == 0) break;  // everything tabu and non-aspiring
      // Uniform tie-break with at most one draw per iteration: the draw
      // count depends only on the multiset of deltas, never on the order
      // candidates were scanned in — a precondition for reproducible
      // forked-RNG runs.
      int pick = tie_count > 1
                     ? static_cast<int>(restart_rng.UniformInt(
                           static_cast<uint64_t>(tie_count)))
                     : 0;
      int best_flip = -1;
      for (int i = 0; i < n; ++i) {
        if (deltas[i] == best_delta && pick-- == 0) {
          best_flip = i;
          break;
        }
      }
      QJO_CHECK_GE(best_flip, 0);
      if (incremental) {
        csr.ApplyFlip(best_flip, x, fields);
      } else {
        x[best_flip] ^= 1;
      }
      energy += best_delta;
      ++moves;
      // Re-tagging a variable whose previous tenure is still active
      // evicts that tenure (the aspiration path lands here too).
      if (tabu_until[best_flip] > it) ++evictions;
      tabu_until[best_flip] = it + tenure;
      if (energy < incumbent.energy) incumbent = QuboSolution{x, energy};
    }
    if (control.metrics != nullptr) {
      control.metrics->Count("tabu.restarts");
      control.metrics->Count("tabu.iterations",
                             static_cast<uint64_t>(iterations_run));
      control.metrics->Count("tabu.moves", moves);
      control.metrics->Count("tabu.evictions", evictions);
    }
    restarts[restart] = std::move(incumbent);
  };
  std::optional<ThreadPool> local_pool;
  ParallelFor(ResolvePool(control.pool, control.parallelism, local_pool), 0,
              options.num_restarts, run_restart);
  SortByEnergy(restarts);
  return restarts;
}

const char* SolverKernelName(SolverKernel kernel) {
  switch (kernel) {
    case SolverKernel::kIncremental:
      return "incremental";
    case SolverKernel::kReference:
      return "reference";
    case SolverKernel::kBatched:
      return "batched";
  }
  return "unknown";
}

const QuboSolution& BestSolution(const std::vector<QuboSolution>& solutions) {
  QJO_CHECK(!solutions.empty());
  const QuboSolution* best = &solutions[0];
  for (const QuboSolution& s : solutions) {
    if (s.energy < best->energy) best = &s;
  }
  return *best;
}

}  // namespace qjo

#ifndef QJO_QUBO_ISING_H_
#define QJO_QUBO_ISING_H_

#include <tuple>
#include <vector>

#include "qubo/qubo.h"

namespace qjo {

/// Ising spin-glass Hamiltonian H(z) = offset + sum_i h_i z_i +
/// sum_{i<j} J_ij z_i z_j with z_i in {-1, +1}. Equivalent to a QUBO under
/// x_i = (1 - z_i) / 2; this is the form consumed by QAOA circuits, the
/// analytic p=1 expectations, and the quantum annealer model.
struct IsingModel {
  std::vector<double> h;
  std::vector<std::tuple<int, int, double>> couplings;  // (i, j, J_ij), i<j
  double offset = 0.0;

  int num_spins() const { return static_cast<int>(h.size()); }

  /// Energy of a spin configuration (entries must be +1/-1).
  double Energy(const std::vector<int>& spins) const;

  /// Largest absolute h or J coefficient.
  double MaxAbsCoefficient() const;
};

/// Exact QUBO -> Ising conversion (x = (1 - z)/2). Energies agree:
/// qubo.Energy(SpinsToBits(z)) == ising.Energy(z) for all z.
IsingModel QuboToIsing(const Qubo& qubo);

/// Maps spins (+1 -> 0, -1 -> 1) back to QUBO bits.
std::vector<int> SpinsToBits(const std::vector<int>& spins);

/// Maps QUBO bits to spins (0 -> +1, 1 -> -1).
std::vector<int> BitsToSpins(const std::vector<int>& bits);

}  // namespace qjo

#endif  // QJO_QUBO_ISING_H_

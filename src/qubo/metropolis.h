#ifndef QJO_QUBO_METROPOLIS_H_
#define QJO_QUBO_METROPOLIS_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace qjo {

/// Decides `u < std::exp(v)` for a uniform draw u in [0, 1) and an
/// exponent v <= 0 while skipping the std::exp call for almost every
/// proposal — and returning *exactly* what the direct comparison would,
/// so batched annealing lanes make bit-identical accept decisions to the
/// scalar kernels.
///
/// Writing u = m * 2^e with m in [0.5, 1) (frexp), ln u lies in
/// [(e-1)*ln2, e*ln2). If v clears that bracket by a margin, the
/// comparison is decided without evaluating exp; only draws whose
/// bracket straddles v (u within a factor of 2 of exp(v), i.e. almost
/// never for strongly uphill moves) fall back to the exact test. The
/// 1e-9 margin dwarfs the bracket's own error budget — the rounding of
/// e*ln2 (< 2e-13 even at e = -1074) plus libm's faithful ~1-ulp exp
/// error — so the shortcut can never disagree with `u < std::exp(v)`.
inline bool MetropolisUnderExp(double u, double v) {
  if (u <= 0.0) return 0.0 < std::exp(v);
  // frexp exponent of a positive normal double, read straight off the
  // IEEE-754 bits (u = 1.f x 2^(b-1023) = m x 2^(b-1022) with m in
  // [0.5, 1)): the libm call is measurable per-proposal overhead in the
  // batched annealing lanes. Subnormals (u < 2^-1022, which a 53-bit
  // uniform draw never produces anyway) keep the exact library path.
  uint64_t bits;
  std::memcpy(&bits, &u, sizeof(bits));
  const int biased = static_cast<int>(bits >> 52);  // sign bit is 0 here
  int e;
  if (biased == 0) {
    (void)std::frexp(u, &e);
  } else {
    e = biased - 1022;
  }
  constexpr double kLn2 = 0.6931471805599453;
  constexpr double kMargin = 1e-9;
  const double le = static_cast<double>(e);
  if (v >= le * kLn2 + kMargin) return true;         // exp(v) > 2^e > u
  if (v <= (le - 1.0) * kLn2 - kMargin) return false;  // exp(v) < 2^(e-1) <= u
  return u < std::exp(v);
}

/// Division-free variant of MetropolisUnderExp for loops where the
/// temperature is fixed across many proposals (one annealing sweep).
///
/// The shortcut brackets only depend on u through its binary exponent,
/// and a 53-bit uniform draw u in (0, 1) has biased exponent 970..1022
/// (u in [2^-53, 1)). Prepare() tabulates the brackets premultiplied by
/// the temperature, so each proposal tests -delta directly against
/// T * (e*ln2 +- margin) — no divide on the hot path. The margin is
/// doubled to 2e-9: dividing the premultiplied comparison back by T
/// shows the extra rounding (two multiplies in Prepare plus the deferred
/// -delta/T rounding) is at most |e*ln2| * 2^-50 < 4e-14 relative to the
/// bracket, so the widened test still implies the 1e-9-margin test that
/// MetropolisUnderExp proves exact. Inconclusive draws — u outside the
/// tabulated exponent range (only u == 0) or -delta inside the widened
/// bracket — fall back to the exact division path.
class MetropolisBands {
 public:
  /// Tabulates the accept/reject brackets for `temperature` > 0.
  /// Overflow to +-inf or underflow to +-0 only narrows the fast bands
  /// (the comparisons below fail), never flips a decision.
  void Prepare(double temperature) {
    temperature_ = temperature;
    constexpr double kLn2 = 0.6931471805599453;
    constexpr double kWideMargin = 2e-9;
    for (int idx = 0; idx < kNumExponents; ++idx) {
      const double le = static_cast<double>(idx + kBiasedMin - 1022);
      hi_[idx] = temperature * (le * kLn2 + kWideMargin);
      lo_[idx] = temperature * ((le - 1.0) * kLn2 - kWideMargin);
    }
  }

  /// Decides `u < std::exp(-delta / temperature)` for the prepared
  /// temperature, bit-identical to the scalar kernel's direct test.
  /// `neg_delta` is -delta (so accept-leaning values are positive).
  bool UnderExp(double u, double neg_delta) const {
    uint64_t bits;
    std::memcpy(&bits, &u, sizeof(bits));
    const uint32_t idx = static_cast<uint32_t>(bits >> 52) - kBiasedMin;
    if (idx < static_cast<uint32_t>(kNumExponents)) {
      if (neg_delta >= hi_[idx]) return true;
      if (neg_delta <= lo_[idx]) return false;
    }
    return MetropolisUnderExp(u, neg_delta / temperature_);
  }

 private:
  // Biased exponents of [2^-53, 1): 1023 - 53 .. 1022.
  static constexpr int kBiasedMin = 970;
  static constexpr int kNumExponents = 53;

  double hi_[kNumExponents];
  double lo_[kNumExponents];
  double temperature_ = 1.0;
};

}  // namespace qjo

#endif  // QJO_QUBO_METROPOLIS_H_

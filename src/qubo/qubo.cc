#include "qubo/qubo.h"

#include <algorithm>
#include <cmath>

namespace qjo {

void Qubo::AddLinear(int i, double weight) {
  QJO_CHECK_GE(i, 0);
  QJO_CHECK_LT(i, num_variables());
  linear_[i] += weight;
  csr_dirty_ = true;
}

void Qubo::AddQuadratic(int i, int j, double weight) {
  QJO_CHECK_NE(i, j);
  QJO_CHECK_GE(std::min(i, j), 0);
  QJO_CHECK_LT(std::max(i, j), num_variables());
  if (i > j) std::swap(i, j);
  auto [it, inserted] = quadratic_.try_emplace(Key(i, j), weight);
  if (!inserted) {
    it->second += weight;
    if (it->second == 0.0) quadratic_.erase(it);
  } else if (weight == 0.0) {
    quadratic_.erase(it);
  }
  csr_dirty_ = true;
}

double Qubo::quadratic(int i, int j) const {
  QJO_CHECK_NE(i, j);
  QJO_CHECK_GE(std::min(i, j), 0);
  QJO_CHECK_LT(std::max(i, j), num_variables());
  if (i > j) std::swap(i, j);
  auto it = quadratic_.find(Key(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

std::vector<std::tuple<int, int, double>> Qubo::QuadraticTerms() const {
  std::vector<std::tuple<int, int, double>> terms;
  terms.reserve(quadratic_.size());
  for (const auto& [key, weight] : quadratic_) {
    terms.emplace_back(static_cast<int>(key >> 32),
                       static_cast<int>(key & 0xffffffffu), weight);
  }
  std::sort(terms.begin(), terms.end());
  return terms;
}

std::vector<std::pair<int, int>> Qubo::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(quadratic_.size());
  for (const auto& [key, weight] : quadratic_) {
    (void)weight;
    edges.emplace_back(static_cast<int>(key >> 32),
                       static_cast<int>(key & 0xffffffffu));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::vector<int>> Qubo::AdjacencyLists() const {
  const QuboCsr& csr = Csr();
  std::vector<std::vector<int>> adjacency(num_variables());
  for (int i = 0; i < num_variables(); ++i) {
    adjacency[i].assign(csr.columns.begin() + csr.offsets[i],
                        csr.columns.begin() + csr.offsets[i + 1]);
  }
  return adjacency;
}

const QuboCsr& Qubo::Csr() const {
  if (csr_dirty_) {
    csr_ = QuboCsr::FromQubo(*this);
    csr_dirty_ = false;
  }
  return csr_;
}

double Qubo::Energy(const std::vector<int>& assignment) const {
  return Csr().Energy(assignment);
}

double Qubo::MaxAbsCoefficient() const {
  double max_abs = 0.0;
  for (double v : linear_) max_abs = std::max(max_abs, std::abs(v));
  for (const auto& [key, weight] : quadratic_) {
    (void)key;
    max_abs = std::max(max_abs, std::abs(weight));
  }
  return max_abs;
}

}  // namespace qjo

#ifndef QJO_QUBO_SOLVERS_H_
#define QJO_QUBO_SOLVERS_H_

#include <atomic>
#include <vector>

#include "qubo/qubo.h"
#include "qubo/solver_control.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/statusor.h"

namespace qjo {

/// A candidate QUBO solution with its energy.
struct QuboSolution {
  std::vector<int> assignment;
  double energy = 0.0;
};

/// Inner-loop implementation of the stochastic solvers (SA, tabu, SQA).
/// Both kernels run on the shared CSR problem layout and walk the same
/// Metropolis/steepest-descent trajectory; they differ only in how the
/// flip deltas are obtained.
enum class SolverKernel {
  /// Persistent local fields h_i = linear_i + sum_j w_ij x_j kept in sync
  /// with the state: O(1) per proposal, O(degree) per *accepted* flip.
  kIncremental,
  /// O(degree) neighbourhood scan per proposal (the pre-refactor
  /// behaviour). Kept as the independent reference implementation for the
  /// kernel-parity tests and the speedup benchmarks.
  kReference,
  /// Multi-replica structure-of-arrays kernel (SA and SQA): groups of
  /// reads anneal together, with each variable's per-replica local fields
  /// in one contiguous plane so accepted flips update all replicas with
  /// SIMD lanes (util/simd.h). Per-replica Rng::Fork streams and an
  /// exponent-bound Metropolis filter (qubo/metropolis.h) keep every
  /// replica's trajectory bit-identical to the same read under
  /// kIncremental, at any parallelism. The default and the production hot
  /// path. Tabu has no batched variant and treats this as kIncremental.
  kBatched,
};

/// Lowercase kernel name for logs, reports, and the CLI ("incremental",
/// "reference", "batched").
const char* SolverKernelName(SolverKernel kernel);

/// Exact minimisation by Gray-code enumeration with incremental energy
/// updates: O(2^n * avg_degree). Fails beyond `max_variables` (default 28,
/// clamped to 63: the Gray-code walk indexes states with a uint64_t and
/// `1 << 64` is undefined behaviour).
StatusOr<QuboSolution> SolveQuboBruteForce(const Qubo& qubo,
                                           int max_variables = 28);

/// Options for the classical simulated-annealing QUBO solver. This serves
/// both as a classical baseline and as a building block for tests; the
/// *quantum* annealer model lives in src/sim (path-integral Monte Carlo).
struct SaOptions {
  int num_reads = 10;            ///< independent restarts
  int sweeps_per_read = 1000;    ///< full-variable Metropolis sweeps
  double initial_temperature = 0.0;  ///< 0 = auto (max |coefficient|)
  double final_temperature = 0.0;    ///< 0 = auto (1e-3 * initial)
  /// Runtime control shared with the other stochastic solvers:
  /// parallelism, pool, cooperative stop, and the observability sinks
  /// (see SolverControl for the per-field contracts).
  SolverControl control;
  /// Inner-loop implementation; kBatched (the default) is bit-identical
  /// to kIncremental; kReference is for tests and benches.
  SolverKernel kernel = SolverKernel::kBatched;
};

/// The resolved geometric cooling schedule: sweep k of a read runs at
/// temperature t_initial * cooling^k, and the *final* sweep
/// (k = sweeps_per_read - 1) runs exactly at t_final. Exposed so tests
/// can pin the schedule endpoints.
struct SaSchedule {
  double t_initial = 0.0;
  double t_final = 0.0;
  double cooling = 1.0;  ///< factor applied after each sweep
};

/// Resolves the auto temperature defaults and the cooling factor for
/// `qubo`. With sweeps_per_read == 1 the single sweep runs at t_initial
/// and cooling degenerates to 1.
SaSchedule ResolveSaSchedule(const Qubo& qubo, const SaOptions& options);

/// Runs classical simulated annealing; returns all reads, best first.
/// Reads run in parallel per `options.parallelism`; output is independent
/// of thread count and scheduling for a fixed `rng` state.
std::vector<QuboSolution> SolveQuboSimulatedAnnealing(const Qubo& qubo,
                                                      const SaOptions& options,
                                                      Rng& rng);

/// Options for the tabu-search QUBO solver (another classical baseline, in
/// the spirit of D-Wave's qbsolv post-processing).
struct TabuOptions {
  int num_restarts = 5;
  int iterations_per_restart = 2000;
  /// Tabu tenure; 0 = auto (~ sqrt(n) + 10).
  int tenure = 0;
  /// Shared runtime control (parallelism/pool/stop/observability); the
  /// stop token is checked once per iteration and the incumbent found so
  /// far is returned.
  SolverControl control;
  /// Inner-loop implementation; kReference is for tests and benches.
  SolverKernel kernel = SolverKernel::kIncremental;
};

/// Tabu search: steepest-descent single-bit flips with a recency-based
/// tabu list and incumbent aspiration. Ties on the best move are broken
/// uniformly with a single RNG draw per iteration (tie counting), so the
/// number of draws never depends on candidate scan order. Returns one
/// solution per restart, best first.
std::vector<QuboSolution> SolveQuboTabuSearch(const Qubo& qubo,
                                              const TabuOptions& options,
                                              Rng& rng);

/// Best solution of a set; aborts on empty input.
const QuboSolution& BestSolution(const std::vector<QuboSolution>& solutions);

}  // namespace qjo

#endif  // QJO_QUBO_SOLVERS_H_

#ifndef QJO_QUBO_SOLVERS_H_
#define QJO_QUBO_SOLVERS_H_

#include <vector>

#include "qubo/qubo.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// A candidate QUBO solution with its energy.
struct QuboSolution {
  std::vector<int> assignment;
  double energy = 0.0;
};

/// Exact minimisation by Gray-code enumeration with incremental energy
/// updates: O(2^n * avg_degree). Fails beyond `max_variables` (default 28).
StatusOr<QuboSolution> SolveQuboBruteForce(const Qubo& qubo,
                                           int max_variables = 28);

/// Options for the classical simulated-annealing QUBO solver. This serves
/// both as a classical baseline and as a building block for tests; the
/// *quantum* annealer model lives in src/sim (path-integral Monte Carlo).
struct SaOptions {
  int num_reads = 10;            ///< independent restarts
  int sweeps_per_read = 1000;    ///< full-variable Metropolis sweeps
  double initial_temperature = 0.0;  ///< 0 = auto (max |coefficient|)
  double final_temperature = 0.0;    ///< 0 = auto (1e-3 * initial)
};

/// Runs classical simulated annealing; returns all reads, best first.
std::vector<QuboSolution> SolveQuboSimulatedAnnealing(const Qubo& qubo,
                                                      const SaOptions& options,
                                                      Rng& rng);

/// Options for the tabu-search QUBO solver (another classical baseline, in
/// the spirit of D-Wave's qbsolv post-processing).
struct TabuOptions {
  int num_restarts = 5;
  int iterations_per_restart = 2000;
  /// Tabu tenure; 0 = auto (~ sqrt(n) + 10).
  int tenure = 0;
};

/// Tabu search: steepest-descent single-bit flips with a recency-based
/// tabu list and incumbent aspiration. Returns one solution per restart,
/// best first.
std::vector<QuboSolution> SolveQuboTabuSearch(const Qubo& qubo,
                                              const TabuOptions& options,
                                              Rng& rng);

/// Best solution of a set; aborts on empty input.
const QuboSolution& BestSolution(const std::vector<QuboSolution>& solutions);

}  // namespace qjo

#endif  // QJO_QUBO_SOLVERS_H_

#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qjo {
namespace simd_internal {

// Implemented by the per-ISA translation units; each returns nullptr when
// its tier was not compiled in (missing compiler flag or non-x86 target).
const SimdOps* GetScalarOps();
const SimdOps* GetSse2Ops();
const SimdOps* GetAvx2Ops();
const SimdOps* GetAvx512Ops();

}  // namespace simd_internal

namespace {

/// True when the host CPU (and OS, via XCR0 for the AVX state) can
/// execute the tier. Compile-time availability is checked separately by
/// the per-ISA getters.
bool HostSupports(SimdIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kSse2:
#if defined(__x86_64__)
      return true;  // architectural baseline
#else
      return __builtin_cpu_supports("sse2");
#endif
    case SimdIsa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case SimdIsa::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == SimdIsa::kScalar;
#endif
}

const SimdOps* CompiledOpsFor(SimdIsa isa) {
  using namespace simd_internal;
  switch (isa) {
    case SimdIsa::kScalar:
      return GetScalarOps();
    case SimdIsa::kSse2:
      return GetSse2Ops();
    case SimdIsa::kAvx2:
      return GetAvx2Ops();
    case SimdIsa::kAvx512:
      return GetAvx512Ops();
  }
  return nullptr;
}

/// Widest available tier at most `cap`. The scalar tier is always
/// compiled in, so this never returns null.
const SimdOps* WidestUpTo(SimdIsa cap) {
  for (int t = static_cast<int>(cap); t > 0; --t) {
    const SimdIsa isa = static_cast<SimdIsa>(t);
    if (HostSupports(isa)) {
      const SimdOps* ops = CompiledOpsFor(isa);
      if (ops != nullptr) return ops;
    }
  }
  return simd_internal::GetScalarOps();
}

const SimdOps* ResolveDefault() {
  SimdIsa cap = SimdIsa::kAvx512;
  if (const char* env = std::getenv("QJO_SIMD")) {
    SimdIsa requested;
    if (ParseSimdIsa(env, &requested)) cap = requested;
  }
  return WidestUpTo(cap);
}

std::atomic<const SimdOps*> g_ops{nullptr};

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kSse2:
      return "sse2";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdIsa(const char* name, SimdIsa* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdIsa::kScalar;
  } else if (std::strcmp(name, "sse2") == 0) {
    *out = SimdIsa::kSse2;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = SimdIsa::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = SimdIsa::kAvx512;
  } else {
    return false;
  }
  return true;
}

const SimdOps& Simd() {
  const SimdOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Racing first calls resolve the same table; the store is idempotent.
    ops = ResolveDefault();
    g_ops.store(ops, std::memory_order_release);
  }
  return *ops;
}

const SimdOps* SimdOpsFor(SimdIsa isa) {
  if (!HostSupports(isa)) return nullptr;
  return CompiledOpsFor(isa);
}

bool SetSimd(SimdIsa isa) {
  const SimdOps* ops = SimdOpsFor(isa);
  if (ops == nullptr) return false;
  g_ops.store(ops, std::memory_order_release);
  return true;
}

}  // namespace qjo

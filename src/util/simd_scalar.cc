#include "util/simd.h"
#include "util/simd_internal.h"

// The portable tier: plain C++ loops, compiled without any vector ISA
// flags. Always present — dispatch falls back here on any host.

namespace qjo {
namespace simd_internal {

const SimdOps* GetScalarOps() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.isa = SimdIsa::kScalar;
    o.name = "scalar";
    o.mixer_low_block = &ScalarMixerLowBlock;
    o.butterfly_rows = &ScalarButterflyRows;
    o.phase_rows = &ScalarPhaseRows;
    o.sa_row_update = &ScalarSaRowUpdate;
    o.sqa_row_update = &ScalarSqaRowUpdate;
    return o;
  }();
  return &ops;
}

}  // namespace simd_internal
}  // namespace qjo

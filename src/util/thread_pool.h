#ifndef QJO_UTIL_THREAD_POOL_H_
#define QJO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qjo {

/// Fixed-size pool of std::jthread workers fed from a plain FIFO queue.
/// Deliberately work-stealing-free: scheduling must never be able to
/// influence results. Determinism of the stochastic solvers comes from
/// seed-splitting (Rng::Fork(stream_id)) plus slot-indexed result
/// collection, so any interleaving produces bit-identical output.
///
/// `parallelism` counts the calling thread: ThreadPool(8) spawns 7
/// workers, and ParallelFor runs loop bodies on the caller as well.
/// ThreadPool(1) spawns no threads and degenerates to a serial loop.
class ThreadPool {
 public:
  explicit ThreadPool(int parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency including the calling thread (always >= 1).
  int parallelism() const { return num_workers_ + 1; }

  /// Runs body(i) for every i in [begin, end) and blocks until all
  /// iterations have finished. The calling thread participates, which
  /// guarantees progress even when every worker is busy — nested
  /// ParallelFor calls from inside a loop body are therefore safe.
  /// `body` must not throw (the library is exception-free by design).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop(std::stop_token stop);

  int num_workers_ = 0;
  std::mutex mutex_;
  std::condition_variable_any work_available_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest
};

/// Pool-optional ParallelFor: runs on `pool` when it actually provides
/// extra threads, otherwise as a plain serial loop. Lets callers thread an
/// optional shared pool through without branching at every call site.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

}  // namespace qjo

#endif  // QJO_UTIL_THREAD_POOL_H_

#ifndef QJO_UTIL_THREAD_POOL_H_
#define QJO_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qjo {

/// Fixed-size pool of std::jthread workers fed from a plain FIFO queue.
/// Deliberately work-stealing-free: scheduling must never be able to
/// influence results. Determinism of the stochastic solvers comes from
/// seed-splitting (Rng::Fork(stream_id)) plus slot-indexed result
/// collection, so any interleaving produces bit-identical output.
///
/// `parallelism` counts the calling thread: ThreadPool(8) spawns 7
/// workers, and ParallelFor runs loop bodies on the caller as well.
/// ThreadPool(1) spawns no threads and degenerates to a serial loop.
class ThreadPool {
 public:
  explicit ThreadPool(int parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency including the calling thread (always >= 1).
  int parallelism() const { return num_workers_ + 1; }

  /// Cumulative number of helper tasks enqueued by ParallelFor over the
  /// pool's lifetime. Cheap telemetry for the observability layer and
  /// for tests asserting that a caller-supplied pool was actually used;
  /// the count depends only on loop sizes and worker count, never on
  /// scheduling.
  uint64_t tasks_dispatched() const {
    return tasks_dispatched_.load(std::memory_order_relaxed);
  }

  /// Runs body(i) for every i in [begin, end) and blocks until all
  /// iterations have finished. The calling thread participates, which
  /// guarantees progress even when every worker is busy. A ParallelFor
  /// issued from inside a loop body (i.e. from a thread already executing
  /// pool work) degenerates to a plain serial loop instead of re-entering
  /// the queue: the pool is already saturated by the outer loop, and
  /// re-dispatch only added queueing overhead and oversubscription.
  /// `body` must not throw (the library is exception-free by design).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop(std::stop_token stop);

  int num_workers_ = 0;
  std::atomic<uint64_t> tasks_dispatched_{0};
  std::mutex mutex_;
  std::condition_variable_any work_available_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest
};

/// True while the calling thread is executing a ParallelFor loop body
/// (its own or as a pool worker). ParallelFor consults this to serialise
/// nested dispatch; exposed so tests and size-thresholded callers can
/// observe the decision.
bool InParallelRegion();

/// Pool-optional ParallelFor: runs on `pool` when it actually provides
/// extra threads, otherwise as a plain serial loop. Lets callers thread an
/// optional shared pool through without branching at every call site.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

/// Runs body(chunk_begin, chunk_end) over consecutive chunks of
/// [begin, end), each `block` indices long (the last one possibly
/// shorter). Chunk boundaries depend only on (begin, end, block) — never
/// on the pool or thread count — so per-chunk partial results (e.g.
/// reduction partials indexed by chunk) are identical at every
/// parallelism level, including serial. This is the data-parallel
/// substrate of the 2^n-amplitude simulator loops: big contiguous chunks
/// amortise the per-task dispatch cost and keep the index space
/// cache-friendly.
void ParallelForBlocks(ThreadPool* pool, int64_t begin, int64_t end,
                       int64_t block,
                       const std::function<void(int64_t, int64_t)>& body);

/// Deterministic parallel reduction over [0, size): each fixed-size block
/// computes partial(block_begin, block_end) into its own slot, and the
/// partials are combined left to right afterwards. Both the block
/// boundaries and the combine order are independent of the pool, so the
/// floating-point result is bit-identical at every parallelism level;
/// with size <= block it degenerates to the plain serial left-to-right
/// sum the pre-parallel code computed.
template <typename PartialFn>
double ParallelBlockedSum(ThreadPool* pool, int64_t size, int64_t block,
                          PartialFn&& partial) {
  if (size <= 0) return 0.0;
  block = std::max<int64_t>(block, 1);
  const int64_t num_blocks = (size + block - 1) / block;
  std::vector<double> partials(static_cast<size_t>(num_blocks), 0.0);
  ParallelForBlocks(pool, 0, size, block,
                    [&](int64_t chunk_begin, int64_t chunk_end) {
                      partials[static_cast<size_t>(chunk_begin / block)] =
                          partial(chunk_begin, chunk_end);
                    });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace qjo

#endif  // QJO_UTIL_THREAD_POOL_H_

#include "util/strings.h"

#include <cstdio>

namespace qjo {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace qjo

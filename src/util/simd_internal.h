#ifndef QJO_UTIL_SIMD_INTERNAL_H_
#define QJO_UTIL_SIMD_INTERNAL_H_

// Scalar bodies of every dispatched kernel, shared by the per-ISA
// translation units: the scalar tier uses them wholesale and the vector
// tiers use them as remainder tails. Each body performs exactly the
// per-element operations (and operand order) the vector kernels perform
// per lane, which is the whole bit-identity story — see util/simd.h.
// Only ever include this from the simd_*.cc TUs (they are compiled with
// -ffp-contract=off so the a*b + c patterns below never fuse).

#include <cstdint>

namespace qjo {
namespace simd_internal {

/// Scalar mixer butterfly on interleaved (re, im) floats:
///   lo' = c*lo + (0,-sn)*hi     hi' = (0,-sn)*lo + c*hi
/// with one IEEE rounding per component, matching the reference kernel's
/// std::complex expression (see sim/qaoa_simulator.cc).
inline void ScalarButterfly1(float* lo, float* hi, float c, float sn) {
  const float re0 = lo[0], im0 = lo[1], re1 = hi[0], im1 = hi[1];
  lo[0] = c * re0 + sn * im1;
  lo[1] = c * im0 - sn * re1;
  hi[0] = sn * im0 + c * re1;
  hi[1] = -(sn * re0) + c * im1;
}

inline void ScalarButterflyRows(float* lo, float* hi, int64_t floats, float c,
                                float sn) {
  for (int64_t f = 0; f + 2 <= floats; f += 2) {
    ScalarButterfly1(lo + f, hi + f, c, sn);
  }
}

inline void ScalarMixerLowBlock(float* a, int64_t bsz, int block_qubits,
                                float c, float sn) {
  for (int q = 0; q < block_qubits; ++q) {
    const int64_t bit = int64_t{1} << q;
    for (int64_t g = 0; g < bsz; g += 2 * bit) {
      for (int64_t l = 0; l < bit; ++l) {
        ScalarButterfly1(a + 2 * (g + l), a + 2 * (g + l + bit), c, sn);
      }
    }
  }
}

/// a[i] *= t[i], component order matching the SSE2 PhaseVec lanes:
/// re' = ar*tr + (-(ai*ti)), im' = ai*tr + ar*ti.
inline void ScalarPhaseRows(float* a, const float* t, int64_t floats) {
  for (int64_t f = 0; f + 2 <= floats; f += 2) {
    const float ar = a[f], ai = a[f + 1];
    const float tr = t[f], ti = t[f + 1];
    a[f] = ar * tr - ai * ti;
    a[f + 1] = ai * tr + ar * ti;
  }
}

/// dir[r] is +-1.0 or 0.0, so dir[r] * w is exact (+-w or +-0.0) and the
/// add reproduces the scalar kernel's fields[j] += w / -= w bit for bit.
inline void ScalarSaRowUpdate(double* fields, const int32_t* cols,
                              const double* w, int count, int64_t lanes,
                              const double* dir) {
  for (int k = 0; k < count; ++k) {
    double* row = fields + static_cast<int64_t>(cols[k]) * lanes;
    const double wk = w[k];
    for (int64_t r = 0; r < lanes; ++r) row[r] += dir[r] * wk;
  }
}

/// dir[r] is +-2.0 or 0.0 — again an exact product per lane.
inline void ScalarSqaRowUpdate(double* fields, const int32_t* cols,
                               const int32_t* edge_ids, const double* w_planes,
                               int count, int64_t lanes, const double* dir) {
  for (int k = 0; k < count; ++k) {
    double* row = fields + static_cast<int64_t>(cols[k]) * lanes;
    const double* wp =
        w_planes + static_cast<int64_t>(edge_ids[k]) * lanes;
    for (int64_t r = 0; r < lanes; ++r) row[r] += dir[r] * wp[r];
  }
}

}  // namespace simd_internal
}  // namespace qjo

#endif  // QJO_UTIL_SIMD_INTERNAL_H_

#ifndef QJO_UTIL_SAMPLING_H_
#define QJO_UTIL_SAMPLING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace qjo {

/// Draws `shots` indices from the distribution prob(0..size-1) by inverse
/// CDF with sorted uniforms: O(size + shots log shots) total instead of a
/// binary search per shot over a materialised CDF. `prob` is any callable
/// uint64_t -> double; it is evaluated once per index, so callers can pass
/// a lambda over amplitudes without building a probability array.
///
/// Uniforms that land past the accumulated total (rounding slack — the
/// probabilities sum to 1 only up to floating-point error) are assigned to
/// the last index with nonzero probability, not blindly to size - 1: a
/// distribution whose support ends early must never emit an index that has
/// probability zero. If the whole distribution is empty the slack falls
/// back to size - 1.
///
/// Samples are appended to `out` in ascending index order (an artefact of
/// the sorted uniforms) — callers that need exchangeable draws shuffle
/// afterwards.
template <typename ProbabilityFn>
void SampleByInverseCdf(uint64_t size, ProbabilityFn&& prob, int shots,
                        Rng& rng, std::vector<uint64_t>& out) {
  QJO_CHECK_GT(size, 0u);
  QJO_CHECK_GT(shots, 0);
  std::vector<double> u(shots);
  for (double& v : u) v = rng.UniformDouble();
  std::sort(u.begin(), u.end());

  out.reserve(out.size() + static_cast<size_t>(shots));
  double cumulative = 0.0;
  size_t next = 0;
  uint64_t last_support = size - 1;
  for (uint64_t i = 0; i < size && next < u.size(); ++i) {
    const double p = prob(i);
    if (p > 0.0) last_support = i;
    cumulative += p;
    while (next < u.size() && u[next] < cumulative) {
      out.push_back(i);
      ++next;
    }
  }
  // Slack can only remain once the loop has scanned the full range, so
  // last_support is final by the time it is used here.
  while (next < u.size()) {
    out.push_back(last_support);
    ++next;
  }
}

}  // namespace qjo

#endif  // QJO_UTIL_SAMPLING_H_

#ifndef QJO_UTIL_SIMD_H_
#define QJO_UTIL_SIMD_H_

#include <cstdint>

namespace qjo {

/// Instruction-set tiers of the runtime-dispatched kernels. Values are
/// ordered (wider is larger) so "clamp a requested tier to what the host
/// supports" is a plain comparison; the numeric value is also what the
/// obs layer records in the `simd.isa` gauge.
enum class SimdIsa {
  kScalar = 0,  ///< plain C++ loops; the portable fallback and the oracle
  kSse2 = 1,    ///< 4-wide floats / 2-wide doubles (x86-64 baseline)
  kAvx2 = 2,    ///< 8-wide floats / 4-wide doubles
  kAvx512 = 3,  ///< 16-wide floats / 8-wide doubles (AVX-512F)
};

const char* SimdIsaName(SimdIsa isa);

/// Parses a QJO_SIMD-style tier name ("scalar", "sse2", "avx2",
/// "avx512"). Returns false on an unknown name.
bool ParseSimdIsa(const char* name, SimdIsa* out);

/// The dispatch table: one function pointer per hot kernel, filled by the
/// per-ISA translation units (simd_scalar.cc / simd_sse2.cc /
/// simd_avx2.cc / simd_avx512.cc).
///
/// Determinism contract: every implementation of a kernel performs the
/// same per-element floating-point operations in the same order as the
/// scalar tier — vector widening only changes how many independent
/// elements are in flight, never an element's mul/add sequence — and the
/// per-ISA TUs are built with -ffp-contract=off so no tier fuses a
/// mul+add the others round separately. Outputs therefore compare equal
/// with operator== across tiers (only signs of zeros can differ, and for
/// the float kernels not even those). This is what keeps fused QAOA
/// sweeps bit-identical to the reference kernel and batched annealing
/// bit-identical to scalar reads on every host.
struct SimdOps {
  SimdIsa isa = SimdIsa::kScalar;
  const char* name = "scalar";

  // --- QAOA float kernels (interleaved re/im pairs; see DESIGN.md,
  // "Simulator fast path"). ---

  /// Mixer butterflies for all qubits with bit < block_qubits, applied to
  /// one cache-resident block of `bsz` amplitudes (2*bsz floats) at `a`.
  /// Qubits ascend, matching the reference kernel's sweep order.
  void (*mixer_low_block)(float* a, int64_t bsz, int block_qubits, float c,
                          float sn) = nullptr;

  /// Butterflies between two contiguous runs of `floats` floats:
  ///   lo' = c*lo + (0,-sn)*hi     hi' = (0,-sn)*lo + c*hi
  /// `floats` is even (interleaved complex); any length is handled.
  void (*butterfly_rows)(float* lo, float* hi, int64_t floats, float c,
                         float sn) = nullptr;

  /// Element-wise complex multiply a[i] *= t[i] over `floats` floats.
  void (*phase_rows)(float* a, const float* t, int64_t floats) = nullptr;

  // --- Batched annealer double kernels (SoA replica planes: row j of a
  // plane holds `lanes` consecutive doubles, one per replica; see
  // DESIGN.md, "Batched multi-replica annealing"). ---

  /// SA neighbour update after a batch of accepted flips of variable i:
  /// for every adjacency entry k in [0, count),
  ///   fields[cols[k]*lanes + r] += dir[r] * w[k]    for all lanes r.
  /// dir[r] is +-1.0 for lanes that flipped and 0.0 for lanes that did
  /// not; the 0-lane add contributes exactly +-0.0, which leaves the
  /// field value unchanged (up to the sign of a zero).
  void (*sa_row_update)(double* fields, const int32_t* cols, const double* w,
                        int count, int64_t lanes, const double* dir) = nullptr;

  /// SQA variant with per-lane coupling weights (each replica carries its
  /// own ICE-perturbed couplings): for every entry k,
  ///   fields[cols[k]*lanes + r] += dir[r] * w_planes[edge_ids[k]*lanes + r].
  /// dir[r] is +-2.0 (2 * new spin) for accepted lanes, 0.0 otherwise.
  void (*sqa_row_update)(double* fields, const int32_t* cols,
                         const int32_t* edge_ids, const double* w_planes,
                         int count, int64_t lanes,
                         const double* dir) = nullptr;
};

/// The process-wide dispatch table: the widest tier both compiled in and
/// supported by the host CPU, optionally capped by the QJO_SIMD
/// environment variable (scalar|sse2|avx2|avx512 — a request the host
/// cannot satisfy falls back to the widest supported tier below it).
/// Resolved once on first use; subsequent calls are a single atomic load.
const SimdOps& Simd();

/// Dispatch table for a specific tier, or nullptr when that tier is not
/// compiled in or the host cannot execute it. Lets tests and benches
/// compare tiers side by side within one process.
const SimdOps* SimdOpsFor(SimdIsa isa);

/// Replaces the process-wide table (the programmatic QJO_SIMD). Returns
/// false (and changes nothing) when the tier is unavailable. Not intended
/// for use while other threads are inside Simd()-dispatched kernels;
/// tests and benches switch tiers between runs, never during one.
bool SetSimd(SimdIsa isa);

}  // namespace qjo

#endif  // QJO_UTIL_SIMD_H_

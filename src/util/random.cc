#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace qjo {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  QJO_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  QJO_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}


size_t Rng::Categorical(const std::vector<double>& weights) {
  QJO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QJO_CHECK_GE(w, 0.0);
    total += w;
  }
  QJO_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Fork(uint64_t stream_id) const {
  // Collapse the 256-bit state into 64 bits, then run two SplitMix64
  // finalisations over state and stream id so that consecutive stream ids
  // land in well-separated regions of the seed space.
  uint64_t x = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^
               Rotl(state_[3], 43);
  uint64_t seed = SplitMix64(x);
  x ^= (stream_id + 1) * 0x9e3779b97f4a7c15ull;
  seed ^= SplitMix64(x);
  return Rng(seed);
}

}  // namespace qjo

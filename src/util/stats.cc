#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace qjo {

double Mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double StdDev(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  const double mean = Mean(sample);
  double sum_sq = 0.0;
  for (double v : sample) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(sample.size() - 1));
}

double Quantile(std::vector<double> sample, double q) {
  QJO_CHECK(!sample.empty());
  QJO_CHECK_GE(q, 0.0);
  QJO_CHECK_LE(q, 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

Summary Summarize(const std::vector<double>& sample) {
  QJO_CHECK(!sample.empty());
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = Quantile(sorted, 0.25);
  s.median = Quantile(sorted, 0.5);
  s.q3 = Quantile(sorted, 0.75);
  s.mean = Mean(sorted);
  s.count = sorted.size();
  return s;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "median=" << median << " [q1=" << q1 << ", q3=" << q3
     << "] min=" << min << " max=" << max << " n=" << count;
  return os.str();
}

}  // namespace qjo

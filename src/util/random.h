#ifndef QJO_UTIL_RANDOM_H_
#define QJO_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qjo {

/// Deterministic pseudo-random number generator (xoshiro256**). All
/// stochastic components of the library (query generation, transpilation
/// tie-breaking, annealing, sampling) draw from an explicitly seeded Rng so
/// every experiment is reproducible, mirroring the paper's reproduction
/// package philosophy.
class Rng {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value. Defined inline: the annealing kernels draw
  /// once per uphill proposal, so the call overhead of an out-of-line
  /// definition is measurable in their inner loops.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal variate (Box-Muller).
  double Gaussian();

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index from an unnormalised non-negative weight vector.
  /// Returns weights.size()-1 on accumulated rounding slack.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independently-seeded child generator; used to give each
  /// repetition of an experiment its own stream. Advances this generator.
  Rng Fork();

  /// Forks the child generator for stream `stream_id` without advancing
  /// this generator: the child seed is a SplitMix64 mix of the current
  /// state and the stream id. Two distinct stream ids yield independent
  /// streams, and the same (state, stream_id) pair always yields the same
  /// child — the basis for bit-identical parallel solver runs regardless
  /// of thread count or scheduling (each read forks stream `read_index`).
  Rng Fork(uint64_t stream_id) const;

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qjo

#endif  // QJO_UTIL_RANDOM_H_

#include "util/simd.h"
#include "util/simd_internal.h"

// AVX-512F tier: 16-wide float butterflies/phases and 8-wide double
// replica updates. _mm512_shuffle_ps with an immediate is per-128-bit
// lane, i.e. the SSE2 pattern applied four times, so per-element
// operation order is unchanged. Sign-flip masks go through the integer
// domain (_mm512_xor_si512) because _mm512_xor_ps requires AVX512DQ and
// this TU only assumes AVX512F. Short runs fall to 256/128-bit and
// scalar tails (AVX-512F implies AVX2 availability).

#if defined(__AVX512F__)

#include <immintrin.h>

namespace qjo {
namespace simd_internal {
namespace {

inline __m128 NegateOdd128(__m128 v) {
  const __m128 mask =
      _mm_castsi128_ps(_mm_set_epi32(0x80000000, 0, 0x80000000, 0));
  return _mm_xor_ps(v, mask);
}

inline __m256 NegateOdd256(__m256 v) {
  const __m256 mask = _mm256_castsi256_ps(
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)));
  return _mm256_xor_ps(v, mask);
}

inline __m512 XorPs512(__m512 v, __m512i mask) {
  return _mm512_castsi512_ps(_mm512_xor_si512(_mm512_castps_si512(v), mask));
}

inline __m512i OddSignMask512() {
  return _mm512_set1_epi64(static_cast<long long>(0x8000000000000000ull));
}

inline __m512i EvenSignMask512() {
  return _mm512_set1_epi64(static_cast<long long>(0x0000000080000000ull));
}

inline void ButterflyVec128(float* lo, float* hi, __m128 vc, __m128 vs) {
  const __m128 v0 = _mm_loadu_ps(lo);
  const __m128 v1 = _mm_loadu_ps(hi);
  const __m128 sw0 = _mm_shuffle_ps(v0, v0, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 sw1 = _mm_shuffle_ps(v1, v1, _MM_SHUFFLE(2, 3, 0, 1));
  _mm_storeu_ps(
      lo, _mm_add_ps(_mm_mul_ps(vc, v0), NegateOdd128(_mm_mul_ps(vs, sw1))));
  _mm_storeu_ps(
      hi, _mm_add_ps(NegateOdd128(_mm_mul_ps(vs, sw0)), _mm_mul_ps(vc, v1)));
}

inline void ButterflyVec256(float* lo, float* hi, __m256 vc, __m256 vs) {
  const __m256 v0 = _mm256_loadu_ps(lo);
  const __m256 v1 = _mm256_loadu_ps(hi);
  const __m256 sw0 = _mm256_shuffle_ps(v0, v0, _MM_SHUFFLE(2, 3, 0, 1));
  const __m256 sw1 = _mm256_shuffle_ps(v1, v1, _MM_SHUFFLE(2, 3, 0, 1));
  _mm256_storeu_ps(lo, _mm256_add_ps(_mm256_mul_ps(vc, v0),
                                     NegateOdd256(_mm256_mul_ps(vs, sw1))));
  _mm256_storeu_ps(hi, _mm256_add_ps(NegateOdd256(_mm256_mul_ps(vs, sw0)),
                                     _mm256_mul_ps(vc, v1)));
}

inline void ButterflyVec512(float* lo, float* hi, __m512 vc, __m512 vs) {
  const __m512 v0 = _mm512_loadu_ps(lo);
  const __m512 v1 = _mm512_loadu_ps(hi);
  const __m512 sw0 = _mm512_shuffle_ps(v0, v0, _MM_SHUFFLE(2, 3, 0, 1));
  const __m512 sw1 = _mm512_shuffle_ps(v1, v1, _MM_SHUFFLE(2, 3, 0, 1));
  const __m512i odd = OddSignMask512();
  _mm512_storeu_ps(lo, _mm512_add_ps(_mm512_mul_ps(vc, v0),
                                     XorPs512(_mm512_mul_ps(vs, sw1), odd)));
  _mm512_storeu_ps(hi, _mm512_add_ps(XorPs512(_mm512_mul_ps(vs, sw0), odd),
                                     _mm512_mul_ps(vc, v1)));
}

inline void ButterflyQ0Vec128(float* a, __m128 vc, __m128 vs) {
  const __m128 v = _mm_loadu_ps(a);
  const __m128 sw = _mm_shuffle_ps(v, v, _MM_SHUFFLE(0, 1, 2, 3));
  const __m128 tt = NegateOdd128(_mm_mul_ps(vs, sw));
  const __m128 cv = _mm_mul_ps(vc, v);
  const __m128 lo = _mm_add_ps(cv, tt);
  const __m128 hi = _mm_add_ps(tt, cv);
  _mm_storeu_ps(a, _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 2, 1, 0)));
}

inline void ButterflyQ0Vec256(float* a, __m256 vc, __m256 vs) {
  const __m256 v = _mm256_loadu_ps(a);
  const __m256 sw = _mm256_shuffle_ps(v, v, _MM_SHUFFLE(0, 1, 2, 3));
  const __m256 tt = NegateOdd256(_mm256_mul_ps(vs, sw));
  const __m256 cv = _mm256_mul_ps(vc, v);
  const __m256 lo = _mm256_add_ps(cv, tt);
  const __m256 hi = _mm256_add_ps(tt, cv);
  _mm256_storeu_ps(a, _mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 2, 1, 0)));
}

inline void ButterflyQ0Vec512(float* a, __m512 vc, __m512 vs) {
  const __m512 v = _mm512_loadu_ps(a);
  const __m512 sw = _mm512_shuffle_ps(v, v, _MM_SHUFFLE(0, 1, 2, 3));
  const __m512 tt = XorPs512(_mm512_mul_ps(vs, sw), OddSignMask512());
  const __m512 cv = _mm512_mul_ps(vc, v);
  const __m512 lo = _mm512_add_ps(cv, tt);
  const __m512 hi = _mm512_add_ps(tt, cv);
  _mm512_storeu_ps(a, _mm512_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 2, 1, 0)));
}

inline void PhaseVec128(float* a, const float* t) {
  const __m128 va = _mm_loadu_ps(a);
  const __m128 vt = _mm_loadu_ps(t);
  const __m128 prpr = _mm_shuffle_ps(vt, vt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 pipi = _mm_shuffle_ps(vt, vt, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 swa = _mm_shuffle_ps(va, va, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 mask =
      _mm_castsi128_ps(_mm_set_epi32(0, 0x80000000, 0, 0x80000000));
  const __m128 x = _mm_mul_ps(va, prpr);
  const __m128 y = _mm_mul_ps(swa, pipi);
  _mm_storeu_ps(a, _mm_add_ps(x, _mm_xor_ps(y, mask)));
}

inline void PhaseVec512(float* a, const float* t) {
  const __m512 va = _mm512_loadu_ps(a);
  const __m512 vt = _mm512_loadu_ps(t);
  const __m512 prpr = _mm512_shuffle_ps(vt, vt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m512 pipi = _mm512_shuffle_ps(vt, vt, _MM_SHUFFLE(3, 3, 1, 1));
  const __m512 swa = _mm512_shuffle_ps(va, va, _MM_SHUFFLE(2, 3, 0, 1));
  const __m512 x = _mm512_mul_ps(va, prpr);
  const __m512 y = _mm512_mul_ps(swa, pipi);
  _mm512_storeu_ps(a, _mm512_add_ps(x, XorPs512(y, EvenSignMask512())));
}

void ButterflyRowsAvx512(float* lo, float* hi, int64_t floats, float c,
                         float sn) {
  const __m512 vc16 = _mm512_set1_ps(c);
  const __m512 vs16 = _mm512_set1_ps(sn);
  int64_t f = 0;
  for (; f + 16 <= floats; f += 16) {
    ButterflyVec512(lo + f, hi + f, vc16, vs16);
  }
  if (f + 8 <= floats) {
    ButterflyVec256(lo + f, hi + f, _mm256_set1_ps(c), _mm256_set1_ps(sn));
    f += 8;
  }
  if (f + 4 <= floats) {
    ButterflyVec128(lo + f, hi + f, _mm_set1_ps(c), _mm_set1_ps(sn));
    f += 4;
  }
  for (; f + 2 <= floats; f += 2) ScalarButterfly1(lo + f, hi + f, c, sn);
}

void MixerLowBlockAvx512(float* a, int64_t bsz, int block_qubits, float c,
                         float sn) {
  const int64_t floats = 2 * bsz;
  if (block_qubits >= 1) {
    const __m512 vc16 = _mm512_set1_ps(c);
    const __m512 vs16 = _mm512_set1_ps(sn);
    int64_t f = 0;
    for (; f + 16 <= floats; f += 16) ButterflyQ0Vec512(a + f, vc16, vs16);
    if (f + 8 <= floats) {
      ButterflyQ0Vec256(a + f, _mm256_set1_ps(c), _mm256_set1_ps(sn));
      f += 8;
    }
    for (; f + 4 <= floats; f += 4) {
      ButterflyQ0Vec128(a + f, _mm_set1_ps(c), _mm_set1_ps(sn));
    }
  }
  for (int q = 1; q < block_qubits; ++q) {
    const int64_t bit = int64_t{1} << q;
    for (int64_t g = 0; g < bsz; g += 2 * bit) {
      ButterflyRowsAvx512(a + 2 * g, a + 2 * (g + bit), 2 * bit, c, sn);
    }
  }
}

void PhaseRowsAvx512(float* a, const float* t, int64_t floats) {
  int64_t f = 0;
  for (; f + 16 <= floats; f += 16) PhaseVec512(a + f, t + f);
  for (; f + 4 <= floats; f += 4) PhaseVec128(a + f, t + f);
  if (f < floats) ScalarPhaseRows(a + f, t + f, floats - f);
}

// Lane chunks are the outer loop so the invariant dir vector loads once
// per chunk instead of once per neighbour (the compiler cannot hoist it
// itself: dir and fields are both double* and may alias). Each plane
// element still accumulates its k terms in ascending order, so results
// stay bit-identical to the neighbour-outer form.
void SaRowUpdateAvx512(double* fields, const int32_t* cols, const double* w,
                       int count, int64_t lanes, const double* dir) {
  int64_t r = 0;
  for (; r + 8 <= lanes; r += 8) {
    const __m512d vd = _mm512_loadu_pd(dir + r);
    for (int k = 0; k < count; ++k) {
      double* row = fields + static_cast<int64_t>(cols[k]) * lanes + r;
      const __m512d vw = _mm512_set1_pd(w[k]);
      _mm512_storeu_pd(
          row, _mm512_add_pd(_mm512_loadu_pd(row), _mm512_mul_pd(vd, vw)));
    }
  }
  for (; r < lanes; ++r) {
    const double d = dir[r];
    for (int k = 0; k < count; ++k) {
      fields[static_cast<int64_t>(cols[k]) * lanes + r] += d * w[k];
    }
  }
}

void SqaRowUpdateAvx512(double* fields, const int32_t* cols,
                        const int32_t* edge_ids, const double* w_planes,
                        int count, int64_t lanes, const double* dir) {
  int64_t r = 0;
  for (; r + 8 <= lanes; r += 8) {
    const __m512d vd = _mm512_loadu_pd(dir + r);
    for (int k = 0; k < count; ++k) {
      double* row = fields + static_cast<int64_t>(cols[k]) * lanes + r;
      const double* wp =
          w_planes + static_cast<int64_t>(edge_ids[k]) * lanes + r;
      const __m512d vw = _mm512_loadu_pd(wp);
      _mm512_storeu_pd(
          row, _mm512_add_pd(_mm512_loadu_pd(row), _mm512_mul_pd(vd, vw)));
    }
  }
  for (; r < lanes; ++r) {
    const double d = dir[r];
    for (int k = 0; k < count; ++k) {
      fields[static_cast<int64_t>(cols[k]) * lanes + r] +=
          d * w_planes[static_cast<int64_t>(edge_ids[k]) * lanes + r];
    }
  }
}

}  // namespace

const SimdOps* GetAvx512Ops() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.isa = SimdIsa::kAvx512;
    o.name = "avx512";
    o.mixer_low_block = &MixerLowBlockAvx512;
    o.butterfly_rows = &ButterflyRowsAvx512;
    o.phase_rows = &PhaseRowsAvx512;
    o.sa_row_update = &SaRowUpdateAvx512;
    o.sqa_row_update = &SqaRowUpdateAvx512;
    return o;
  }();
  return &ops;
}

}  // namespace simd_internal
}  // namespace qjo

#else  // !defined(__AVX512F__)

namespace qjo {
namespace simd_internal {

const SimdOps* GetAvx512Ops() { return nullptr; }

}  // namespace simd_internal
}  // namespace qjo

#endif  // defined(__AVX512F__)

#include "util/status.h"

namespace qjo {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qjo

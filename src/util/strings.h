#ifndef QJO_UTIL_STRINGS_H_
#define QJO_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace qjo {

/// Joins the elements of `parts` with `sep`, streaming each element.
template <typename Container>
std::string Join(const Container& parts, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    os << p;
    first = false;
  }
  return os.str();
}

/// printf-style double formatting with `digits` decimals.
std::string FormatDouble(double value, int digits);

/// Formats `value` as a percentage with `digits` decimals, e.g. "12.3%".
std::string FormatPercent(double fraction, int digits = 2);

}  // namespace qjo

#endif  // QJO_UTIL_STRINGS_H_

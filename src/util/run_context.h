#ifndef QJO_UTIL_RUN_CONTEXT_H_
#define QJO_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <cmath>

#include "util/status.h"

namespace qjo {

class ThreadPool;
class TraceRecorder;
class MetricsRegistry;

/// Shared execution context of the orchestration layers (portfolio race,
/// decomposition loop, end-to-end pipeline). Consolidates the
/// deadline/parallelism/pool/stop/observability knobs that used to be
/// duplicated across PortfolioOptions, DecompOptions and QjoConfig into
/// one struct each of them embeds by value as `run`.
///
/// Nothing here is owned: pool, stop, trace and metrics must outlive the
/// call they are passed to. The per-field contracts mirror SolverControl
/// (the equivalent surface of the inner QUBO solvers), plus the
/// wall-clock deadline the solvers themselves never take — they are
/// bounded by sweeps and the cooperative stop token only.
struct RunContext {
  /// Wall-clock budget in milliseconds. > 0: the layer winds down
  /// cooperatively on expiry (watchdog token or between-rounds checks)
  /// and answers with its incumbent. 0: zero budget — orchestrators
  /// answer immediately with their cheap fallback. < 0: no deadline; the
  /// run must then be bounded another way (sweep budget, round budget),
  /// which each layer's validation enforces at entry. Wall-clock
  /// cut-offs are inherently scheduling-dependent, so deadline-bounded
  /// runs are *not* bit-reproducible; budget-bounded runs are.
  double deadline_ms = -1.0;

  /// Threads for the layer's fan-out (strands, windows, queries) and the
  /// solvers' inner read loops (nested ParallelFor on one pool); 1 =
  /// serial. Results never depend on it.
  int parallelism = 1;

  /// Optional externally-owned pool shared across calls. Null = a
  /// transient pool is created on demand when parallelism > 1.
  ThreadPool* pool = nullptr;

  /// Optional externally-owned cooperative cancel token (e.g. a
  /// per-request token armed by the serving layer's DeadlineMonitor).
  /// Once it fires, the layer winds down exactly as on deadline expiry
  /// (the incumbent so far wins; the JO layer still guarantees a plan).
  /// While the token stays unset it never influences results, so
  /// budget-bounded runs remain bit-reproducible.
  const std::atomic<bool>* stop = nullptr;

  /// Observability sinks (null-sink default, not owned). Attaching them
  /// never changes a result: recorded runs are bit-identical to
  /// unrecorded ones.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Validates the layer-independent RunContext invariants. Each layer's
/// entry point composes this with its own budget checks (e.g. the
/// portfolio's round sizes, the decomposition's round budget) so every
/// misconfiguration is one InvalidArgument at entry instead of silent
/// misbehaviour downstream.
inline Status ValidateRunContext(const RunContext& run) {
  if (run.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (std::isnan(run.deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must not be NaN");
  }
  return Status::Ok();
}

}  // namespace qjo

#endif  // QJO_UTIL_RUN_CONTEXT_H_

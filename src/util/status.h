#ifndef QJO_UTIL_STATUS_H_
#define QJO_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace qjo {

/// Error categories used across the library. Mirrors the usual
/// RocksDB/Abseil status-code vocabulary, restricted to what we need.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Lightweight status object for fallible operations. The library does not
/// throw exceptions; every operation that can fail returns a Status or a
/// StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad qubit index".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

}  // namespace qjo

/// Propagates a non-OK status to the caller.
#define QJO_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::qjo::Status _qjo_status = (expr);          \
    if (!_qjo_status.ok()) return _qjo_status;   \
  } while (0)

#endif  // QJO_UTIL_STATUS_H_

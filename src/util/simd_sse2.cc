#include "util/simd.h"
#include "util/simd_internal.h"

// SSE2 tier: 4-wide float butterflies/phases (moved here from the
// original hand-vectorised sim/qaoa_simulator.cc fast path) and 2-wide
// double replica-plane updates. Compiled without extra flags on x86-64
// (SSE2 is the architectural baseline).

#if defined(__SSE2__)

#include <emmintrin.h>
#include <xmmintrin.h>

namespace qjo {
namespace simd_internal {
namespace {

/// Negates lanes 1 and 3 (the imaginary components of two interleaved
/// complex floats).
inline __m128 NegateOdd(__m128 v) {
  const __m128 mask = _mm_castsi128_ps(
      _mm_set_epi32(0x80000000, 0, 0x80000000, 0));
  return _mm_xor_ps(v, mask);
}

/// Two mixer butterflies between interleaved complex pairs at lo and hi:
/// per lane exactly ScalarButterfly1's mul/add sequence.
inline void ButterflyVec(float* lo, float* hi, __m128 vc, __m128 vs) {
  const __m128 v0 = _mm_loadu_ps(lo);
  const __m128 v1 = _mm_loadu_ps(hi);
  const __m128 sw0 = _mm_shuffle_ps(v0, v0, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 sw1 = _mm_shuffle_ps(v1, v1, _MM_SHUFFLE(2, 3, 0, 1));
  _mm_storeu_ps(
      lo, _mm_add_ps(_mm_mul_ps(vc, v0), NegateOdd(_mm_mul_ps(vs, sw1))));
  _mm_storeu_ps(
      hi, _mm_add_ps(NegateOdd(_mm_mul_ps(vs, sw0)), _mm_mul_ps(vc, v1)));
}

/// Qubit-0 butterfly on two adjacent complex floats [re0 im0 re1 im1]:
/// the lo/hi pair lives inside one vector, so reverse-shuffle pairs the
/// partners and a final blend re-assembles the result.
inline void ButterflyQ0Vec(float* a, __m128 vc, __m128 vs) {
  const __m128 v = _mm_loadu_ps(a);
  const __m128 sw = _mm_shuffle_ps(v, v, _MM_SHUFFLE(0, 1, 2, 3));
  const __m128 tt = NegateOdd(_mm_mul_ps(vs, sw));
  const __m128 cv = _mm_mul_ps(vc, v);
  const __m128 lo = _mm_add_ps(cv, tt);
  const __m128 hi = _mm_add_ps(tt, cv);
  _mm_storeu_ps(a, _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 2, 1, 0)));
}

/// Complex multiply of two interleaved pairs: a *= t.
inline void PhaseVec(float* a, const float* t) {
  const __m128 va = _mm_loadu_ps(a);
  const __m128 vt = _mm_loadu_ps(t);
  const __m128 prpr = _mm_shuffle_ps(vt, vt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 pipi = _mm_shuffle_ps(vt, vt, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 swa = _mm_shuffle_ps(va, va, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 mask = _mm_castsi128_ps(
      _mm_set_epi32(0, 0x80000000, 0, 0x80000000));
  const __m128 x = _mm_mul_ps(va, prpr);
  const __m128 y = _mm_mul_ps(swa, pipi);
  _mm_storeu_ps(a, _mm_add_ps(x, _mm_xor_ps(y, mask)));
}

void ButterflyRowsSse2(float* lo, float* hi, int64_t floats, float c,
                       float sn) {
  const __m128 vc = _mm_set1_ps(c);
  const __m128 vs = _mm_set1_ps(sn);
  int64_t f = 0;
  for (; f + 4 <= floats; f += 4) ButterflyVec(lo + f, hi + f, vc, vs);
  for (; f + 2 <= floats; f += 2) ScalarButterfly1(lo + f, hi + f, c, sn);
}

void MixerLowBlockSse2(float* a, int64_t bsz, int block_qubits, float c,
                       float sn) {
  const int64_t floats = 2 * bsz;
  if (block_qubits >= 1) {
    const __m128 vc = _mm_set1_ps(c);
    const __m128 vs = _mm_set1_ps(sn);
    int64_t f = 0;
    for (; f + 4 <= floats; f += 4) ButterflyQ0Vec(a + f, vc, vs);
  }
  for (int q = 1; q < block_qubits; ++q) {
    const int64_t bit = int64_t{1} << q;
    for (int64_t g = 0; g < bsz; g += 2 * bit) {
      ButterflyRowsSse2(a + 2 * g, a + 2 * (g + bit), 2 * bit, c, sn);
    }
  }
}

void PhaseRowsSse2(float* a, const float* t, int64_t floats) {
  int64_t f = 0;
  for (; f + 4 <= floats; f += 4) PhaseVec(a + f, t + f);
  if (f < floats) ScalarPhaseRows(a + f, t + f, floats - f);
}

// Lane chunks are the outer loop so the invariant dir vector loads once
// per chunk instead of once per neighbour (the compiler cannot hoist it
// itself: dir and fields are both double* and may alias). Each plane
// element still accumulates its k terms in ascending order, so results
// stay bit-identical to the neighbour-outer form.
void SaRowUpdateSse2(double* fields, const int32_t* cols, const double* w,
                     int count, int64_t lanes, const double* dir) {
  int64_t r = 0;
  for (; r + 2 <= lanes; r += 2) {
    const __m128d vd = _mm_loadu_pd(dir + r);
    for (int k = 0; k < count; ++k) {
      double* row = fields + static_cast<int64_t>(cols[k]) * lanes + r;
      const __m128d vw = _mm_set1_pd(w[k]);
      _mm_storeu_pd(row, _mm_add_pd(_mm_loadu_pd(row), _mm_mul_pd(vd, vw)));
    }
  }
  for (; r < lanes; ++r) {
    const double d = dir[r];
    for (int k = 0; k < count; ++k) {
      fields[static_cast<int64_t>(cols[k]) * lanes + r] += d * w[k];
    }
  }
}

void SqaRowUpdateSse2(double* fields, const int32_t* cols,
                      const int32_t* edge_ids, const double* w_planes,
                      int count, int64_t lanes, const double* dir) {
  int64_t r = 0;
  for (; r + 2 <= lanes; r += 2) {
    const __m128d vd = _mm_loadu_pd(dir + r);
    for (int k = 0; k < count; ++k) {
      double* row = fields + static_cast<int64_t>(cols[k]) * lanes + r;
      const double* wp =
          w_planes + static_cast<int64_t>(edge_ids[k]) * lanes + r;
      const __m128d vw = _mm_loadu_pd(wp);
      _mm_storeu_pd(row, _mm_add_pd(_mm_loadu_pd(row), _mm_mul_pd(vd, vw)));
    }
  }
  for (; r < lanes; ++r) {
    const double d = dir[r];
    for (int k = 0; k < count; ++k) {
      fields[static_cast<int64_t>(cols[k]) * lanes + r] +=
          d * w_planes[static_cast<int64_t>(edge_ids[k]) * lanes + r];
    }
  }
}

}  // namespace

const SimdOps* GetSse2Ops() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.isa = SimdIsa::kSse2;
    o.name = "sse2";
    o.mixer_low_block = &MixerLowBlockSse2;
    o.butterfly_rows = &ButterflyRowsSse2;
    o.phase_rows = &PhaseRowsSse2;
    o.sa_row_update = &SaRowUpdateSse2;
    o.sqa_row_update = &SqaRowUpdateSse2;
    return o;
  }();
  return &ops;
}

}  // namespace simd_internal
}  // namespace qjo

#else  // !defined(__SSE2__)

namespace qjo {
namespace simd_internal {

const SimdOps* GetSse2Ops() { return nullptr; }

}  // namespace simd_internal
}  // namespace qjo

#endif  // defined(__SSE2__)

#ifndef QJO_UTIL_STATS_H_
#define QJO_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace qjo {

/// Five-number summary of a sample, matching what the paper's boxplots
/// (Fig. 2, Fig. 5) display.
struct Summary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  size_t count = 0;

  /// Compact rendering "median=... [q1=..,q3=..] min=.. max=..".
  std::string ToString() const;
};

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& sample);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const std::vector<double>& sample);

/// Linear-interpolation quantile, q in [0,1]. Aborts on empty input.
double Quantile(std::vector<double> sample, double q);

/// Computes the five-number summary of a sample. Aborts on empty input.
Summary Summarize(const std::vector<double>& sample);

}  // namespace qjo

#endif  // QJO_UTIL_STATS_H_

#ifndef QJO_UTIL_CHECK_H_
#define QJO_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace qjo {
namespace internal_check {

/// Streams a fatal diagnostic and aborts the process when destroyed.
/// Used by QJO_CHECK for programmer errors (invariant violations); user
/// errors must be reported via Status instead.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  void operator&&(const CheckFailStream&) const {}
};

}  // namespace internal_check
}  // namespace qjo

/// Aborts with a message when `condition` is false. For internal invariants
/// only; never for validating user input.
#define QJO_CHECK(condition)        \
  (condition) ? (void)0             \
              : ::qjo::internal_check::Voidify() && \
                    ::qjo::internal_check::CheckFailStream(#condition, \
                                                           __FILE__, __LINE__)

#define QJO_CHECK_EQ(a, b) QJO_CHECK((a) == (b))
#define QJO_CHECK_NE(a, b) QJO_CHECK((a) != (b))
#define QJO_CHECK_LT(a, b) QJO_CHECK((a) < (b))
#define QJO_CHECK_LE(a, b) QJO_CHECK((a) <= (b))
#define QJO_CHECK_GT(a, b) QJO_CHECK((a) > (b))
#define QJO_CHECK_GE(a, b) QJO_CHECK((a) >= (b))

#endif  // QJO_UTIL_CHECK_H_

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace qjo {
namespace {

/// Set while this thread runs a ParallelFor body (as caller or worker).
/// Nested ParallelFor calls observe it and fall back to a serial loop:
/// the outer loop already owns every pool thread, so nested dispatch can
/// only queue behind itself. Results are unaffected either way — bodies
/// are index-deterministic by contract — this is purely a scheduling fix.
thread_local bool t_in_parallel_region = false;

}  // namespace

bool InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(int parallelism) {
  num_workers_ = std::max(parallelism, 1) - 1;
  workers_.reserve(num_workers_);
  for (int w = 0; w < num_workers_; ++w) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  work_available_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, stop, [this] { return !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& body) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  if (num_workers_ == 0 || total == 1 || t_in_parallel_region) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Shared claim counter: every participating thread grabs the next
  // un-run index. Which thread runs an index is scheduling-dependent;
  // what each index computes is not (callers fork per-index RNG streams
  // and write to per-index slots).
  struct LoopState {
    std::atomic<int64_t> next;
    std::atomic<int64_t> done{0};
    int64_t end = 0;
    int64_t total = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->total = total;
  state->body = &body;

  // Runner shared by workers and the caller. A queued runner that wakes
  // after the loop already completed sees next >= end and exits without
  // touching `body`, so the dangling-reference window is closed by the
  // claim counter itself.
  auto run = [state] {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->end) break;
      (*state->body)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
    t_in_parallel_region = was_in_region;
  };

  const int64_t helpers =
      std::min<int64_t>(num_workers_, total - 1);  // caller takes one share
  tasks_dispatched_.fetch_add(static_cast<uint64_t>(helpers),
                              std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t h = 0; h < helpers; ++h) tasks_.push(run);
  }
  work_available_.notify_all();

  run();  // participate: guarantees progress even if no worker is free

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  if (pool != nullptr && pool->parallelism() > 1) {
    pool->ParallelFor(begin, end, body);
  } else {
    for (int64_t i = begin; i < end; ++i) body(i);
  }
}

void ParallelForBlocks(ThreadPool* pool, int64_t begin, int64_t end,
                       int64_t block,
                       const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  block = std::max<int64_t>(block, 1);
  // Chunk boundaries are a pure function of (begin, end, block): chunk c
  // covers [begin + c * block, min(begin + (c + 1) * block, end)). The
  // pool only decides which thread runs a chunk, never what the chunk is.
  const int64_t num_chunks = (end - begin + block - 1) / block;
  ParallelFor(pool, 0, num_chunks, [&](int64_t chunk) {
    const int64_t chunk_begin = begin + chunk * block;
    const int64_t chunk_end = std::min(chunk_begin + block, end);
    body(chunk_begin, chunk_end);
  });
}

}  // namespace qjo

#ifndef QJO_UTIL_STATUSOR_H_
#define QJO_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace qjo {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status (the error path).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    QJO_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QJO_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    QJO_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    QJO_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qjo

/// Evaluates a StatusOr expression; on success binds the value to `lhs`,
/// on error returns the status from the enclosing function.
#define QJO_ASSIGN_OR_RETURN(lhs, expr)                \
  QJO_ASSIGN_OR_RETURN_IMPL_(                          \
      QJO_STATUS_MACRO_CONCAT_(_qjo_sor, __LINE__), lhs, expr)

#define QJO_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define QJO_STATUS_MACRO_CONCAT_(x, y) QJO_STATUS_MACRO_CONCAT_INNER_(x, y)
#define QJO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // QJO_UTIL_STATUSOR_H_

#include "decomp/decomp.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "core/postprocess.h"
#include "jo/classical.h"
#include "qubo/ising.h"
#include "qubo/solvers.h"
#include "sim/sqa.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qjo {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Pseudo-relation cardinalities must stay positive and finite for the
/// log-domain encoder: huge prefixes (products of up to 62 cardinalities)
/// are clamped instead of overflowing to inf, tiny ones instead of
/// underflowing below the paper's Card >= 1 requirement.
double ClampCardinality(double card) {
  if (!(card >= 1.0)) return 1.0;  // also catches NaN
  return std::min(card, 1e150);
}

/// Selectivity products towards a large prefix can underflow; keep them
/// inside the (0, 1] domain AddPredicate enforces.
double ClampSelectivity(double sel) {
  if (!(sel > 0.0)) return 1e-150;  // also catches NaN
  return std::min(sel, 1.0);
}

/// Sub-solver rotation: each (round, window) slot runs one of the three
/// stochastic kernels, so the strand inherits the portfolio's solver
/// diversity without racing all of them per window.
enum class SubSolver { kSa, kTabu, kSqa };

SubSolver PickSubSolver(int round, int window_index) {
  switch ((round + window_index) % 3) {
    case 0:
      return SubSolver::kSa;
    case 1:
      return SubSolver::kTabu;
    default:
      return SubSolver::kSqa;
  }
}

/// A window proposal: the window's relations (global ids) in their
/// proposed relative order. Empty = window was skipped (stop/deadline or
/// an unexpected failure); the stitch step then leaves it unchanged.
struct WindowProposal {
  std::vector<int> relative_order;
  bool repaired = false;
  bool solved = false;
};

/// Projects a subquery join order back onto global relation ids, dropping
/// the prefix pseudo-relation wherever the sample placed it. This *is*
/// the repair step: whatever the sub-solver produced, the projection is a
/// permutation of exactly the window's relations.
std::vector<int> ProjectSubOrder(const WindowSubproblem& sub,
                                 const LeftDeepOrder& sub_order) {
  std::vector<int> relative;
  relative.reserve(sub.relations.size());
  const int offset = sub.has_prefix ? 1 : 0;
  for (int i = 0; i < sub_order.size(); ++i) {
    const int s = sub_order[i];
    if (sub.has_prefix && s == 0) continue;  // the prefix pseudo-relation
    relative.push_back(sub.relations[s - offset]);
  }
  return relative;
}

/// Replaces the window's positions of `order` with `relative` (a
/// permutation of the same relation set).
std::vector<int> ApplyProposal(const std::vector<int>& order,
                               const DecompWindow& window,
                               const std::vector<int>& relative) {
  QJO_CHECK_EQ(static_cast<int>(relative.size()), window.length);
  std::vector<int> candidate = order;
  std::copy(relative.begin(), relative.end(),
            candidate.begin() + window.start);
  return candidate;
}

}  // namespace

std::vector<DecompWindow> PartitionWindows(int t, int window, int phase) {
  QJO_CHECK_GT(window, 0);
  QJO_CHECK_GE(phase, 0);
  std::vector<DecompWindow> windows;
  int start = 0;
  while (start < t) {
    const int end = start == 0 && phase > 0 ? std::min(phase, t)
                                            : std::min(start + window, t);
    const int length = end - start;
    if (length >= 2) windows.push_back(DecompWindow{start, length});
    start = end;
  }
  return windows;
}

StatusOr<WindowSubproblem> BuildWindowSubproblem(const Query& query,
                                                 const std::vector<int>& order,
                                                 const DecompWindow& window) {
  if (window.length < 2) {
    return Status::InvalidArgument("window needs at least 2 relations");
  }
  WindowSubproblem sub;
  sub.has_prefix = window.start > 0;

  uint64_t prefix_mask = 0;
  for (int p = 0; p < window.start; ++p) {
    prefix_mask |= uint64_t{1} << order[p];
  }
  if (sub.has_prefix) {
    sub.subquery.AddRelation("prefix",
                             ClampCardinality(query.JoinCardinality(prefix_mask)));
  }
  const int offset = sub.has_prefix ? 1 : 0;
  sub.relations.reserve(window.length);
  for (int p = window.start; p < window.start + window.length; ++p) {
    const int r = order[p];
    sub.relations.push_back(r);
    sub.subquery.AddRelation(query.relation(r).name,
                             ClampCardinality(query.relation(r).cardinality));
  }
  // Window-internal predicates carry over verbatim; predicates towards
  // the prefix fold into one pseudo-predicate per window relation with
  // the combined selectivity (relations *after* the window never
  // influence the window's intermediate results, so they drop out).
  for (int i = 0; i < window.length; ++i) {
    const int global_i = sub.relations[i];
    if (sub.has_prefix) {
      const double sel = query.SelectivityBetween(prefix_mask, global_i);
      if (sel < 1.0) {
        QJO_RETURN_IF_ERROR(
            sub.subquery.AddPredicate(0, i + offset, ClampSelectivity(sel)));
      }
    }
    for (int j = i + 1; j < window.length; ++j) {
      const int global_j = sub.relations[j];
      const double sel = query.SelectivityBetween(uint64_t{1} << global_i,
                                                  global_j);
      if (sel < 1.0) {
        QJO_RETURN_IF_ERROR(sub.subquery.AddPredicate(
            i + offset, j + offset, ClampSelectivity(sel)));
      }
    }
  }
  return sub;
}

StatusOr<DecompReport> OptimizeJoinOrderDecomposed(const Query& query,
                                                   const DecompOptions& options,
                                                   Rng& rng) {
  const int t = query.num_relations();
  if (t < 2) return Status::InvalidArgument("need at least 2 relations");
  if (t > 63) {
    return Status::ResourceExhausted(
        "decomposition cost model indexes relations through uint64_t masks "
        "(at most 63 relations)");
  }
  QJO_RETURN_IF_ERROR(ValidateRunContext(options.run));
  if (options.max_rounds <= 0 && options.run.deadline_ms <= 0.0) {
    return Status::InvalidArgument(
        "unbounded decomposition: need max_rounds or a deadline");
  }
  if (options.subsolver_reads <= 0 || options.subsolver_sweeps <= 0) {
    return Status::InvalidArgument("sub-solver budgets must be positive");
  }

  const Clock::time_point start = Clock::now();
  DecompReport report;

  // Seed incumbent: the greedy plan. Improvement-only acceptance makes
  // `cost <= greedy_cost` an invariant, not a hope.
  QJO_ASSIGN_OR_RETURN(JoResult seed, OptimizeGreedy(query));
  std::vector<int> incumbent = seed.order.order();
  double incumbent_cost = seed.cost;
  report.greedy_cost = seed.cost;

  const int window = std::min(std::max(options.window, 2), t);

  JoEncodingOptions encode_options;
  encode_options.num_thresholds = options.num_thresholds;
  encode_options.omega = options.omega;

  std::optional<QuboBuildCache> local_cache;
  QuboBuildCache* cache = options.cache;
  if (cache == nullptr) {
    // Window shapes repeat across rounds; a private per-call cache still
    // removes most rebuilds when no shared one is attached.
    local_cache.emplace(256);
    cache = &*local_cache;
  }

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = options.run.pool;
  if (pool == nullptr && options.run.parallelism > 1) {
    local_pool.emplace(options.run.parallelism);
    pool = &*local_pool;
  }

  // Workers consult this concurrently, so the deadline verdict lives in
  // an atomic and is folded into the report once the fan-outs are done.
  std::atomic<bool> deadline_hit{false};
  const auto expired = [&] {
    if (options.run.stop != nullptr &&
        options.run.stop->load(std::memory_order_relaxed)) {
      return true;
    }
    if (options.run.deadline_ms > 0.0 && MsSince(start) >= options.run.deadline_ms) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  const int max_rounds = options.max_rounds > 0
                             ? options.max_rounds
                             : std::numeric_limits<int>::max();
  int stalled = 0;
  for (int round = 0; round < max_rounds; ++round) {
    if (expired()) break;
    if (options.stall_rounds > 0 && stalled >= options.stall_rounds) break;

    // --- Partition. Phase alternation makes consecutive rounds overlap:
    // positions split by this round's cuts share a window in the next.
    std::vector<DecompWindow> windows;
    {
      StageSpan span(options.run.trace, "decomp.partition");
      windows = PartitionWindows(t, window, (round % 2) * (window / 2));
      // Worst window first: rank by the window's share of the incumbent
      // cost (the intermediate results produced at its positions), ties
      // by start for determinism.
      const CostBreakdown breakdown =
          EvaluateCost(query, LeftDeepOrder(incumbent));
      std::vector<std::pair<double, size_t>> ranked(windows.size());
      for (size_t w = 0; w < windows.size(); ++w) {
        double contribution = 0.0;
        for (int p = std::max(windows[w].start, 1);
             p < windows[w].start + windows[w].length; ++p) {
          contribution += breakdown.intermediate_cardinalities[p - 1];
        }
        ranked[w] = {contribution, w};
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      std::vector<DecompWindow> sorted;
      sorted.reserve(windows.size());
      for (const auto& [contribution, w] : ranked) sorted.push_back(windows[w]);
      windows = std::move(sorted);
    }
    if (windows.empty()) break;

    // --- Sub-solve every window of the round in parallel. Each window
    // forks its own RNG stream and writes its own proposal slot; the
    // incumbent is frozen for the whole fan-out, so results are
    // bit-identical at any parallelism level.
    const Rng round_rng = rng.Fork(static_cast<uint64_t>(round));
    std::vector<WindowProposal> proposals(windows.size());
    ParallelFor(pool, 0, static_cast<int64_t>(windows.size()), [&](int64_t w) {
      if (expired()) return;
      const std::string span_name = "decomp.subsolve." + std::to_string(w);
      StageSpan span(options.run.trace, span_name.c_str());
      WindowProposal& proposal = proposals[w];
      Rng window_rng = round_rng.Fork(static_cast<uint64_t>(w));

      auto sub = BuildWindowSubproblem(query, incumbent, windows[w]);
      if (!sub.ok()) return;

      // Encode through the shared build cache: the LNS loop re-solves
      // recurring window shapes, so most rounds hit instead of rebuild.
      std::vector<QuboSolution> solutions;
      auto encoded = cache->GetOrBuild(sub->subquery, encode_options);
      if (encoded.ok()) {
        const Qubo& qubo = (*encoded)->encoding.qubo;
        SolverControl control;
        control.parallelism = 1;  // the fan-out above owns the threads
        control.stop = options.run.stop;
        control.trace = options.run.trace;
        control.metrics = options.run.metrics;
        switch (PickSubSolver(round, static_cast<int>(w))) {
          case SubSolver::kSa: {
            SaOptions sa;
            sa.num_reads = options.subsolver_reads;
            sa.sweeps_per_read = options.subsolver_sweeps;
            sa.kernel = options.solver_kernel;
            sa.control = control;
            solutions = SolveQuboSimulatedAnnealing(qubo, sa, window_rng);
            break;
          }
          case SubSolver::kTabu: {
            TabuOptions tabu;
            tabu.num_restarts = options.subsolver_reads;
            tabu.iterations_per_restart = options.subsolver_sweeps;
            tabu.kernel = options.solver_kernel;
            tabu.control = control;
            solutions = SolveQuboTabuSearch(qubo, tabu, window_rng);
            break;
          }
          case SubSolver::kSqa: {
            const IsingModel ising = QuboToIsing(qubo);
            SqaOptions sqa;
            sqa.num_reads = options.subsolver_reads;
            sqa.annealing_time_us = options.subsolver_sweeps;
            sqa.sweeps_per_us = 1.0;
            sqa.kernel = options.solver_kernel;
            sqa.control = control;
            auto samples = RunSqa(ising, sqa, window_rng);
            if (samples.ok()) {
              for (const SqaSample& sample : *samples) {
                solutions.push_back(
                    QuboSolution{SpinsToBits(sample.spins), sample.energy});
              }
            }
            break;
          }
        }
      }

      // Stitch preparation: decode every read, project out the prefix,
      // and keep the relative order whose candidate scores best against
      // the frozen incumbent.
      double best_cost = std::numeric_limits<double>::infinity();
      for (const QuboSolution& solution : solutions) {
        auto decoded = DecodeSample((*encoded)->milp, solution.assignment);
        if (!decoded.ok()) continue;
        std::vector<int> relative = ProjectSubOrder(*sub, *decoded);
        const double cost = Cost(
            query, LeftDeepOrder(ApplyProposal(incumbent, windows[w],
                                               relative)));
        if (cost < best_cost) {
          best_cost = cost;
          proposal.relative_order = std::move(relative);
        }
      }
      if (proposal.relative_order.empty()) {
        // Nothing decoded: classical repair. The subquery has at most
        // window + 1 relations, far under the DP cap, so this is exact.
        auto repaired = OptimizeDp(sub->subquery);
        if (repaired.ok()) {
          proposal.relative_order = ProjectSubOrder(*sub, repaired->order);
          proposal.repaired = true;
        }
      }
      proposal.solved = true;
    });

    // --- Stitch: fold proposals into the incumbent in fixed (worst-
    // first) order, re-evaluating each against the evolving incumbent;
    // only global improvements are accepted.
    int round_improvements = 0;
    {
      StageSpan span(options.run.trace, "decomp.stitch");
      for (size_t w = 0; w < windows.size(); ++w) {
        const WindowProposal& proposal = proposals[w];
        if (!proposal.solved) continue;
        ++report.windows_solved;
        if (proposal.repaired) ++report.repairs;
        if (proposal.relative_order.empty()) continue;
        std::vector<int> candidate =
            ApplyProposal(incumbent, windows[w], proposal.relative_order);
        const double cost = Cost(query, LeftDeepOrder(candidate));
        if (cost < incumbent_cost) {
          incumbent = std::move(candidate);
          incumbent_cost = cost;
          ++round_improvements;
        }
      }
    }
    report.improvements += round_improvements;
    stalled = round_improvements > 0 ? 0 : stalled + 1;
    ++report.rounds;
  }

  if (options.run.metrics != nullptr) {
    options.run.metrics->Count("decomp.rounds",
                           static_cast<uint64_t>(report.rounds));
    options.run.metrics->Count("decomp.windows_solved",
                           static_cast<uint64_t>(report.windows_solved));
    options.run.metrics->Count("decomp.improvements",
                           static_cast<uint64_t>(report.improvements));
    options.run.metrics->Count("decomp.repairs",
                           static_cast<uint64_t>(report.repairs));
  }

  report.deadline_expired = deadline_hit.load(std::memory_order_relaxed);
  report.order = LeftDeepOrder(std::move(incumbent));
  report.cost = incumbent_cost;
  report.elapsed_ms = MsSince(start);
  return report;
}

}  // namespace qjo

#ifndef QJO_DECOMP_DECOMP_H_
#define QJO_DECOMP_DECOMP_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/qubo_cache.h"
#include "jo/join_tree.h"
#include "jo/query.h"
#include "obs/obs.h"
#include "qubo/solvers.h"
#include "util/random.h"
#include "util/run_context.h"
#include "util/statusor.h"

namespace qjo {

class ThreadPool;

/// Hybrid qbsolv-style decomposition for large join-ordering queries
/// (Nayak et al.: hybrid quantum-classical approaches for JO QUBOs).
///
/// Every backend below this layer solves one monolithic QUBO, which stops
/// producing valid join trees well before 20 relations. The decomposition
/// strand instead runs large-neighborhood search over the join order:
///
///  1. *Seed.* The classical greedy plan is the initial incumbent, so the
///     result can never be worse than greedy.
///  2. *Partition.* The incumbent order is cut into windows of
///     `window` consecutive positions. Windows within a round are
///     disjoint (their reorderings commute); successive rounds shift the
///     cut points by half a window, so every pair of adjacent positions
///     shares a window in one of any two consecutive rounds.
///  3. *Sub-solve.* Each window becomes a small subquery — the already-
///     joined prefix is folded into one pseudo-relation carrying its
///     cardinality and its combined selectivities towards every window
///     relation — encoded through the shared QUBO build cache and solved
///     with the fast incremental SA/tabu/SQA kernels (rotating per
///     window so the strand inherits the portfolio's solver diversity).
///  4. *Stitch + repair.* The best decodable sample yields a relative
///     order of the window's relations (the prefix pseudo-relation is
///     projected out — the repair that keeps every candidate a valid
///     permutation). When nothing decodes, the classical DP oracle on
///     the subquery supplies the relative order instead. A candidate is
///     accepted iff it lowers the *global* C_out cost.
///  5. *Iterate.* Rounds repeat — re-optimising the currently worst
///     windows first — until the round budget, the deadline, or a
///     convergence stall (two phase-alternating rounds without
///     improvement) ends the search.
///
/// Determinism: window solves fork disjoint RNG streams
/// (`rng.Fork(round).Fork(window)`) and proposals are folded in fixed
/// window order, so a rounds-bounded run is bit-identical at every
/// parallelism level. Deadline-bounded runs stop cooperatively between
/// window solves and are wall-clock-dependent, exactly like the
/// portfolio's deadline mode.
struct DecompOptions {
  /// Relations per window (the subqueries add one prefix pseudo-relation
  /// on top). Sized for the fast incremental kernels: sub-QUBOs stay in
  /// the few-hundred-variable range where SA/tabu sweeps are microseconds.
  int window = 9;
  /// LNS rounds. <= 0 requires a positive deadline (run until it fires).
  int max_rounds = 8;
  /// Consecutive improvement-free rounds before giving up early; >= 2
  /// guarantees both partition phases were retried since the last
  /// improvement.
  int stall_rounds = 2;

  /// Sub-solver effort per window: reads/restarts x sweeps/iterations.
  int subsolver_reads = 4;
  int subsolver_sweeps = 96;
  /// Inner-loop kernel of the rotating SA/tabu/SQA sub-solves (tabu
  /// treats kBatched as its incremental kernel). kBatched is
  /// bit-identical to kIncremental.
  SolverKernel solver_kernel = SolverKernel::kBatched;

  /// Encoding options for the window subqueries (kept small: one
  /// threshold keeps sub-QUBOs lean; the acceptance test uses the exact
  /// C_out cost anyway, so encoding granularity only shapes proposals).
  int num_thresholds = 1;
  double omega = 1.0;

  /// Build cache for the window sub-encodings. The LNS loop hits it
  /// thousands of times per query (windows repeat across rounds), which
  /// is exactly the workload the cache's single-entry LRU eviction
  /// protects. Null = the call creates a private cache for its duration.
  QuboBuildCache* cache = nullptr;

  /// Deadline, parallelism for the per-round window fan-out (results
  /// never depend on it) and the usual non-owned pool/stop/observability
  /// wiring, shared with the other orchestration layers (see
  /// util/run_context.h). `run.deadline_ms` <= 0 = no deadline (bounded
  /// by max_rounds); when positive it is checked between window solves,
  /// and `run.stop` (when set) is honoured the same way.
  RunContext run;
};

/// One window of consecutive incumbent-order positions, [start, start+length).
struct DecompWindow {
  int start = 0;
  int length = 0;
};

/// Cuts positions 0..t-1 into disjoint windows of `window` positions.
/// `phase` shifts every cut point right (0 <= phase < window), producing
/// a leading partial window; a trailing partial window absorbs the
/// remainder. Windows shorter than 2 positions are dropped (reordering
/// them is a no-op). Deterministic and exposed for tests.
std::vector<DecompWindow> PartitionWindows(int t, int window, int phase);

/// The window subproblem: a standalone subquery plus the mapping back to
/// global relation ids. When the window does not start the join order,
/// subquery relation 0 is a pseudo-relation standing for the entire
/// already-joined prefix (cardinality = JoinCardinality(prefix), one
/// predicate per window relation carrying its combined selectivity
/// towards the prefix); window relations follow in incumbent order.
struct WindowSubproblem {
  Query subquery;
  /// Global relation id of subquery relation (i + has_prefix).
  std::vector<int> relations;
  bool has_prefix = false;
};

/// Builds the subproblem for `window` over `order` (the incumbent).
/// Exposed for tests; fails only on degenerate windows (< 2 relations).
StatusOr<WindowSubproblem> BuildWindowSubproblem(const Query& query,
                                                 const std::vector<int>& order,
                                                 const DecompWindow& window);

/// Everything one decomposition run learned, mirroring PortfolioReport's
/// counters so the strand's metrics stay comparable.
struct DecompReport {
  LeftDeepOrder order;  ///< always a valid permutation (greedy-seeded)
  double cost = 0.0;
  double greedy_cost = 0.0;  ///< the seed; cost <= greedy_cost always
  int rounds = 0;
  int windows_solved = 0;
  int improvements = 0;     ///< accepted window proposals
  int repairs = 0;          ///< windows stitched via the classical DP repair
  bool deadline_expired = false;
  double elapsed_ms = 0.0;
};

/// Runs the decomposition loop on `query`. Always returns a valid join
/// tree with cost <= the greedy baseline (the seed) when it returns at
/// all; fails only on < 2 relations, > 63 relations (bitmask-bounded cost
/// model), or an unbounded configuration.
StatusOr<DecompReport> OptimizeJoinOrderDecomposed(const Query& query,
                                                   const DecompOptions& options,
                                                   Rng& rng);

}  // namespace qjo

#endif  // QJO_DECOMP_DECOMP_H_

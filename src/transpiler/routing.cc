#include "transpiler/routing.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace qjo {
namespace {

/// Gate-dependency DAG over the logical circuit: gate g depends on the
/// previous gate touching each of its qubits.
struct GateDag {
  explicit GateDag(const QuantumCircuit& circuit) {
    const auto& gates = circuit.gates();
    successors.resize(gates.size());
    pending_deps.assign(gates.size(), 0);
    std::vector<int> last(circuit.num_qubits(), -1);
    for (size_t g = 0; g < gates.size(); ++g) {
      for (int q : gates[g].qubits) {
        if (last[q] >= 0) {
          successors[last[q]].push_back(static_cast<int>(g));
          ++pending_deps[g];
        }
        last[q] = static_cast<int>(g);
      }
    }
    for (size_t g = 0; g < gates.size(); ++g) {
      if (pending_deps[g] == 0) front.push_back(static_cast<int>(g));
    }
  }

  void MarkExecuted(int gate, std::vector<int>& newly_ready) {
    for (int next : successors[gate]) {
      if (--pending_deps[next] == 0) newly_ready.push_back(next);
    }
  }

  std::vector<std::vector<int>> successors;
  std::vector<int> pending_deps;
  std::vector<int> front;
};

}  // namespace

const char* RoutingStrategyName(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kLookahead:
      return "lookahead";
    case RoutingStrategy::kBasic:
      return "basic";
  }
  return "unknown";
}

StatusOr<std::vector<int>> ChooseInitialLayout(const QuantumCircuit& logical,
                                               const CouplingGraph& device,
                                               Rng& rng) {
  const int l = logical.num_qubits();
  const int n = device.num_qubits();
  if (l > n) return Status::InvalidArgument("circuit larger than device");
  if (l == 0) return std::vector<int>{};
  if (!device.IsConnected()) {
    return Status::InvalidArgument("device graph must be connected");
  }

  // 1. Pick a dense connected physical region of size l, BFS-grown from a
  //    random high-degree seed (randomness models transpiler run-to-run
  //    variance, cf. Fig. 2's 20 transpilations).
  std::vector<int> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0);
  std::sort(seeds.begin(), seeds.end(), [&](int a, int b) {
    return device.Degree(a) > device.Degree(b);
  });
  const int top = std::max(1, n / 8);
  const int seed = seeds[rng.UniformInt(top)];

  std::vector<bool> selected(n, false);
  std::vector<int> region = {seed};
  selected[seed] = true;
  while (static_cast<int>(region.size()) < l) {
    // Candidate = neighbour of the region; prefer max edges into region.
    int best = -1;
    int best_links = -1;
    for (int node : region) {
      for (int next : device.Neighbors(node)) {
        if (selected[next]) continue;
        int links = 0;
        for (int nb : device.Neighbors(next)) {
          if (selected[nb]) ++links;
        }
        // Random tie-break.
        if (links > best_links || (links == best_links && rng.Bernoulli(0.5))) {
          best_links = links;
          best = next;
        }
      }
    }
    QJO_CHECK_GE(best, 0);
    selected[best] = true;
    region.push_back(best);
  }

  // 2. Place interaction-heavy logical qubits first, each on the free
  //    region slot closest to its already-placed interaction partners.
  std::vector<std::vector<int>> interactions(l);
  for (const Gate& g : logical.gates()) {
    if (g.qubits.size() == 2) {
      interactions[g.qubits[0]].push_back(g.qubits[1]);
      interactions[g.qubits[1]].push_back(g.qubits[0]);
    }
  }
  std::vector<int> logical_order(l);
  std::iota(logical_order.begin(), logical_order.end(), 0);
  std::sort(logical_order.begin(), logical_order.end(), [&](int a, int b) {
    return interactions[a].size() > interactions[b].size();
  });

  // Precompute BFS distances from every region slot once.
  std::vector<std::vector<int>> slot_dist(n);
  for (int slot : region) slot_dist[slot] = device.BfsDistances(slot);

  std::vector<int> layout(l, -1);
  std::vector<bool> used(n, false);
  for (int lq : logical_order) {
    int best_slot = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int slot : region) {
      if (used[slot]) continue;
      double cost = 0.0;
      const std::vector<int>& dist = slot_dist[slot];
      for (int partner : interactions[lq]) {
        if (layout[partner] >= 0) cost += dist[layout[partner]];
      }
      cost += rng.UniformDouble() * 0.1;  // tie-break jitter
      if (cost < best_cost) {
        best_cost = cost;
        best_slot = slot;
      }
    }
    QJO_CHECK_GE(best_slot, 0);
    layout[lq] = best_slot;
    used[best_slot] = true;
  }
  return layout;
}

StatusOr<RoutingResult> RouteCircuit(const QuantumCircuit& logical,
                                     const CouplingGraph& device,
                                     const std::vector<int>& initial_layout,
                                     RoutingStrategy strategy, Rng& rng) {
  const int l = logical.num_qubits();
  const int n = device.num_qubits();
  if (static_cast<int>(initial_layout.size()) != l) {
    return Status::InvalidArgument("layout size mismatch");
  }
  std::vector<bool> used(n, false);
  for (int p : initial_layout) {
    if (p < 0 || p >= n || used[p]) {
      return Status::InvalidArgument("invalid initial layout");
    }
    used[p] = true;
  }

  const std::vector<std::vector<int>> dist = device.AllPairsDistances();

  RoutingResult result;
  result.circuit = QuantumCircuit(n);
  result.initial_layout = initial_layout;

  // mapping[logical] = physical; inverse[physical] = logical or -1.
  std::vector<int> mapping = initial_layout;
  std::vector<int> inverse(n, -1);
  for (int lq = 0; lq < l; ++lq) inverse[mapping[lq]] = lq;

  auto apply_swap = [&](int pa, int pb) {
    result.circuit.Swap(pa, pb);
    ++result.num_swaps;
    const int la = inverse[pa];
    const int lb = inverse[pb];
    if (la >= 0) mapping[la] = pb;
    if (lb >= 0) mapping[lb] = pa;
    std::swap(inverse[pa], inverse[pb]);
  };
  auto emit_gate = [&](const Gate& g) {
    Gate physical = g;
    for (int& q : physical.qubits) q = mapping[q];
    result.circuit.Append(std::move(physical));
  };

  const auto& gates = logical.gates();
  if (strategy == RoutingStrategy::kBasic) {
    for (const Gate& g : gates) {
      if (g.qubits.size() == 2) {
        // Walk the first operand toward the second along a shortest path.
        while (!device.HasEdge(mapping[g.qubits[0]], mapping[g.qubits[1]])) {
          const int pa = mapping[g.qubits[0]];
          const int pb = mapping[g.qubits[1]];
          int step = -1;
          for (int nb : device.Neighbors(pa)) {
            if (dist[nb][pb] == dist[pa][pb] - 1) {
              step = nb;
              break;
            }
          }
          QJO_CHECK_GE(step, 0);
          apply_swap(pa, step);
        }
      }
      emit_gate(g);
    }
    result.final_layout = mapping;
    return result;
  }

  // Lookahead (SABRE-flavoured) routing.
  GateDag dag(logical);
  std::vector<int> front = std::move(dag.front);
  // Decay discourages ping-ponging the same physical qubits.
  std::vector<double> decay(n, 1.0);
  int steps_since_progress = 0;

  auto front_cost = [&](const std::vector<int>& gate_ids) {
    double cost = 0.0;
    for (int gid : gate_ids) {
      const Gate& g = gates[gid];
      if (g.qubits.size() == 2) {
        cost += dist[mapping[g.qubits[0]]][mapping[g.qubits[1]]];
      }
    }
    return cost;
  };

  while (!front.empty()) {
    // Execute everything executable.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::vector<int> still_blocked;
      std::vector<int> newly_ready;
      for (int gid : front) {
        const Gate& g = gates[gid];
        const bool ready =
            g.qubits.size() == 1 ||
            device.HasEdge(mapping[g.qubits[0]], mapping[g.qubits[1]]);
        if (ready) {
          emit_gate(g);
          dag.MarkExecuted(gid, newly_ready);
          progressed = true;
        } else {
          still_blocked.push_back(gid);
        }
      }
      front = std::move(still_blocked);
      front.insert(front.end(), newly_ready.begin(), newly_ready.end());
      if (progressed) {
        std::fill(decay.begin(), decay.end(), 1.0);
        steps_since_progress = 0;
      }
    }
    if (front.empty()) break;

    // Extended window: the next two-qubit gates reachable from the front.
    std::vector<int> extended;
    {
      std::vector<int> frontier = front;
      std::vector<bool> seen(gates.size(), false);
      while (!frontier.empty() && extended.size() < 20) {
        std::vector<int> next_frontier;
        for (int gid : frontier) {
          for (int succ : dag.successors[gid]) {
            if (seen[succ]) continue;
            seen[succ] = true;
            if (gates[succ].qubits.size() == 2) extended.push_back(succ);
            next_frontier.push_back(succ);
          }
        }
        frontier = std::move(next_frontier);
      }
    }

    // Candidate swaps: device edges incident to the physical qubits of
    // blocked front gates.
    std::vector<std::pair<int, int>> candidates;
    for (int gid : front) {
      const Gate& g = gates[gid];
      for (int lq : g.qubits) {
        const int p = mapping[lq];
        for (int nb : device.Neighbors(p)) {
          candidates.emplace_back(std::min(p, nb), std::max(p, nb));
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    QJO_CHECK(!candidates.empty());

    if (++steps_since_progress > n + 20) {
      // Escape hatch: force progress by walking the first blocked
      // two-qubit gate's operands together along a shortest path.
      int gid = -1;
      for (int f : front) {
        if (gates[f].qubits.size() == 2) {
          gid = f;
          break;
        }
      }
      QJO_CHECK_GE(gid, 0);
      const Gate& g = gates[gid];
      while (!device.HasEdge(mapping[g.qubits[0]], mapping[g.qubits[1]])) {
        const int pa = mapping[g.qubits[0]];
        const int pb = mapping[g.qubits[1]];
        int step = -1;
        for (int nb : device.Neighbors(pa)) {
          if (dist[nb][pb] == dist[pa][pb] - 1) {
            step = nb;
            break;
          }
        }
        QJO_CHECK_GE(step, 0);
        apply_swap(pa, step);
      }
      continue;
    }

    double best_score = std::numeric_limits<double>::infinity();
    std::pair<int, int> best_swap = candidates[0];
    for (const auto& [pa, pb] : candidates) {
      // Tentatively apply.
      const int la = inverse[pa];
      const int lb = inverse[pb];
      if (la >= 0) mapping[la] = pb;
      if (lb >= 0) mapping[lb] = pa;
      // SABRE-style heuristic: average front distance plus a discounted
      // extended-window term.
      double score =
          front_cost(front) / std::max<size_t>(front.size(), 1) +
          0.5 * front_cost(extended) / std::max<size_t>(extended.size(), 1);
      score *= std::max(decay[pa], decay[pb]);
      score += rng.UniformDouble() * 1e-6;  // random tie-break
      if (score < best_score) {
        best_score = score;
        best_swap = {pa, pb};
      }
      // Undo.
      if (la >= 0) mapping[la] = pa;
      if (lb >= 0) mapping[lb] = pb;
    }
    apply_swap(best_swap.first, best_swap.second);
    decay[best_swap.first] += 0.1;
    decay[best_swap.second] += 0.1;
  }
  result.final_layout = mapping;
  return result;
}

bool IsProperlyRouted(const QuantumCircuit& circuit,
                      const CouplingGraph& device) {
  for (const Gate& g : circuit.gates()) {
    if (g.qubits.size() == 2 && !device.HasEdge(g.qubits[0], g.qubits[1])) {
      return false;
    }
  }
  return true;
}

}  // namespace qjo

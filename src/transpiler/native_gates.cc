#include "transpiler/native_gates.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace qjo {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kAngleTolerance = 1e-9;

bool NearlyEqual(double a, double b) {
  return std::abs(a - b) < kAngleTolerance;
}

/// Angle in [0, 2pi).
double NormalizeAngle(double theta) {
  double t = std::fmod(theta, 2.0 * kPi);
  if (t < 0.0) t += 2.0 * kPi;
  return t;
}

bool IsZeroRotation(double theta) {
  const double t = NormalizeAngle(theta);
  return t < kAngleTolerance || 2.0 * kPi - t < kAngleTolerance;
}

/// Decomposition rules, applied recursively until only native gates remain.
/// All identities hold up to global phase (verified in the test suite
/// against the dense simulator).
void Emit(const Gate& gate, NativeGateSet set, QuantumCircuit& out);

void EmitAll(const std::vector<Gate>& gates, NativeGateSet set,
             QuantumCircuit& out) {
  for (const Gate& g : gates) Emit(g, set, out);
}

void Emit(const Gate& gate, NativeGateSet set, QuantumCircuit& out) {
  if (IsNativeGate(set, gate.type) &&
      // Rigetti only exposes RX at multiples of pi/2.
      !(set == NativeGateSet::kRigetti && gate.type == GateType::kRx &&
        !NearlyEqual(NormalizeAngle(gate.parameter),
                     NormalizeAngle(std::round(gate.parameter / (kPi / 2)) *
                                    (kPi / 2)))) ) {
    out.Append(gate);
    return;
  }
  const int q = gate.qubits[0];
  const int q2 = gate.qubits.size() > 1 ? gate.qubits[1] : -1;
  const double theta = gate.parameter;
  switch (gate.type) {
    case GateType::kH:
      // H ~ RZ(pi/2) . SX . RZ(pi/2)  (IBM) / RX(pi/2) for SX elsewhere.
      EmitAll({Gate::Single(GateType::kRz, q, kPi / 2),
               Gate::Single(GateType::kSx, q),
               Gate::Single(GateType::kRz, q, kPi / 2)},
              set, out);
      return;
    case GateType::kSx:
      // SX ~ RX(pi/2).
      Emit(Gate::Single(GateType::kRx, q, kPi / 2), set, out);
      return;
    case GateType::kX:
      Emit(Gate::Single(GateType::kRx, q, kPi), set, out);
      return;
    case GateType::kRx:
      // RX(t) = H RZ(t) H ~ RZ(pi/2) SX RZ(t+pi) SX RZ(pi/2).
      EmitAll({Gate::Single(GateType::kRz, q, kPi / 2),
               Gate::Single(GateType::kSx, q),
               Gate::Single(GateType::kRz, q, theta + kPi),
               Gate::Single(GateType::kSx, q),
               Gate::Single(GateType::kRz, q, kPi / 2)},
              set, out);
      return;
    case GateType::kRy:
      // RY(t): conjugate RX by RZ — in circuit order RZ(-pi/2), RX(t),
      // RZ(pi/2).
      EmitAll({Gate::Single(GateType::kRz, q, -kPi / 2),
               Gate::Single(GateType::kRx, q, theta),
               Gate::Single(GateType::kRz, q, kPi / 2)},
              set, out);
      return;
    case GateType::kRz:
      // RZ = H RX H on hypothetical sets without RZ (not the case here).
      QJO_CHECK(false) << "RZ is native on every modelled gate set";
      return;
    case GateType::kRzz:
      if (set == NativeGateSet::kIonq) {
        // ZZ = (HxH) XX (HxH).
        EmitAll({Gate::Single(GateType::kH, q), Gate::Single(GateType::kH, q2),
                 Gate::Two(GateType::kMs, q, q2, theta),
                 Gate::Single(GateType::kH, q),
                 Gate::Single(GateType::kH, q2)},
                set, out);
      } else {
        // RZZ(t) = CX . RZ(t on target) . CX.
        EmitAll({Gate::Two(GateType::kCx, q, q2),
                 Gate::Single(GateType::kRz, q2, theta),
                 Gate::Two(GateType::kCx, q, q2)},
                set, out);
      }
      return;
    case GateType::kCx:
      if (set == NativeGateSet::kRigetti) {
        // CX(a,b) = H(b) CZ(a,b) H(b).
        EmitAll({Gate::Single(GateType::kH, q2),
                 Gate::Two(GateType::kCz, q, q2),
                 Gate::Single(GateType::kH, q2)},
                set, out);
      } else if (set == NativeGateSet::kIonq) {
        // CX(a,b) = RY(pi/2)@a . XX(pi/2) . RX(-pi/2)@a . RX(-pi/2)@b .
        //           RY(-pi/2)@a (Maslov-style MS decomposition).
        EmitAll({Gate::Single(GateType::kRy, q, kPi / 2),
                 Gate::Two(GateType::kMs, q, q2, kPi / 2),
                 Gate::Single(GateType::kRx, q, -kPi / 2),
                 Gate::Single(GateType::kRx, q2, -kPi / 2),
                 Gate::Single(GateType::kRy, q, -kPi / 2)},
                set, out);
      } else {
        QJO_CHECK(false) << "CX should be native on " << NativeGateSetName(set);
      }
      return;
    case GateType::kCz:
      // CZ(a,b) = H(b) CX(a,b) H(b).
      EmitAll({Gate::Single(GateType::kH, q2), Gate::Two(GateType::kCx, q, q2),
               Gate::Single(GateType::kH, q2)},
              set, out);
      return;
    case GateType::kSwap:
      EmitAll({Gate::Two(GateType::kCx, q, q2), Gate::Two(GateType::kCx, q2, q),
               Gate::Two(GateType::kCx, q, q2)},
              set, out);
      return;
    case GateType::kMs:
      // XX = (HxH) ZZ (HxH).
      EmitAll({Gate::Single(GateType::kH, q), Gate::Single(GateType::kH, q2),
               Gate::Two(GateType::kRzz, q, q2, theta),
               Gate::Single(GateType::kH, q), Gate::Single(GateType::kH, q2)},
              set, out);
      return;
  }
  QJO_CHECK(false) << "unhandled gate";
}

}  // namespace

const char* NativeGateSetName(NativeGateSet set) {
  switch (set) {
    case NativeGateSet::kIbm:
      return "ibm";
    case NativeGateSet::kRigetti:
      return "rigetti";
    case NativeGateSet::kIonq:
      return "ionq";
    case NativeGateSet::kUnrestricted:
      return "unrestricted";
  }
  return "unknown";
}

bool IsNativeGate(NativeGateSet set, GateType type) {
  switch (set) {
    case NativeGateSet::kUnrestricted:
      return true;
    case NativeGateSet::kIbm:
      return type == GateType::kRz || type == GateType::kSx ||
             type == GateType::kX || type == GateType::kCx;
    case NativeGateSet::kRigetti:
      return type == GateType::kRz || type == GateType::kRx ||
             type == GateType::kCz;
    case NativeGateSet::kIonq:
      switch (type) {
        case GateType::kH:
        case GateType::kX:
        case GateType::kSx:
        case GateType::kRx:
        case GateType::kRy:
        case GateType::kRz:
        case GateType::kMs:
          return true;
        default:
          return false;
      }
  }
  return false;
}

StatusOr<QuantumCircuit> DecomposeToNative(const QuantumCircuit& circuit,
                                           NativeGateSet set) {
  QuantumCircuit out(circuit.num_qubits());
  for (const Gate& g : circuit.gates()) Emit(g, set, out);
  return MergeRotations(out);
}

QuantumCircuit MergeRotations(const QuantumCircuit& circuit) {
  // Iterate merge+drop to a fixpoint; each pass is linear.
  std::vector<Gate> gates = circuit.gates();
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Gate> next;
    next.reserve(gates.size());
    // last_index[q]: position in `next` of the last gate touching qubit q.
    std::vector<int> last_index(circuit.num_qubits(), -1);
    for (const Gate& g : gates) {
      if (IsParameterised(g.type) && IsZeroRotation(g.parameter)) {
        changed = true;
        continue;
      }
      bool merged = false;
      if (IsParameterised(g.type)) {
        const int last = last_index[g.qubits[0]];
        if (last >= 0 && next[last].type == g.type &&
            next[last].qubits == g.qubits) {
          // For 2q rotations both operands must see this gate last.
          bool adjacent = true;
          for (int q : g.qubits) adjacent = adjacent && last_index[q] == last;
          if (adjacent) {
            next[last].parameter += g.parameter;
            merged = true;
            changed = true;
          }
        }
      }
      if (!merged) {
        for (int q : g.qubits) {
          last_index[q] = static_cast<int>(next.size());
        }
        next.push_back(g);
      }
    }
    gates = std::move(next);
  }
  QuantumCircuit out(circuit.num_qubits());
  for (Gate& g : gates) out.Append(std::move(g));
  return out;
}

}  // namespace qjo

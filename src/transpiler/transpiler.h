#ifndef QJO_TRANSPILER_TRANSPILER_H_
#define QJO_TRANSPILER_TRANSPILER_H_

#include <vector>

#include "circuit/circuit.h"
#include "topology/coupling_graph.h"
#include "transpiler/native_gates.h"
#include "transpiler/routing.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// End-to-end transpilation configuration.
struct TranspileOptions {
  NativeGateSet gate_set = NativeGateSet::kUnrestricted;
  RoutingStrategy routing = RoutingStrategy::kLookahead;
  /// Seed for the stochastic layout/routing heuristics: different seeds
  /// model different transpilation runs (Fig. 2's depth distributions).
  uint64_t seed = 1;
};

/// Result of transpiling a logical circuit for a target device.
struct TranspileResult {
  /// Physical circuit: routed to the coupling map and restricted to the
  /// native gate set.
  QuantumCircuit circuit;
  std::vector<int> initial_layout;  ///< logical -> physical
  std::vector<int> final_layout;    ///< logical -> physical after SWAPs
  int num_swaps = 0;
  int depth = 0;
  int two_qubit_gate_count = 0;
};

/// Full pipeline: choose initial layout, route (SWAP insertion), decompose
/// to the native gate set, merge rotations, and report depth metrics.
StatusOr<TranspileResult> Transpile(const QuantumCircuit& logical,
                                    const CouplingGraph& device,
                                    const TranspileOptions& options);

}  // namespace qjo

#endif  // QJO_TRANSPILER_TRANSPILER_H_

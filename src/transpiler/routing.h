#ifndef QJO_TRANSPILER_ROUTING_H_
#define QJO_TRANSPILER_ROUTING_H_

#include <vector>

#include "circuit/circuit.h"
#include "topology/coupling_graph.h"
#include "util/random.h"
#include "util/statusor.h"

namespace qjo {

/// SWAP-insertion strategies. `kLookahead` is a SABRE-flavoured heuristic
/// (cost of the front layer plus a discounted extended window) standing in
/// for the Qiskit transpiler; `kBasic` greedily walks each non-adjacent
/// gate's operands together along a shortest path, a simpler router whose
/// ~2x depth overhead matches what the paper observed for tket.
enum class RoutingStrategy { kLookahead, kBasic };

const char* RoutingStrategyName(RoutingStrategy strategy);

/// Result of routing a logical circuit onto a device.
struct RoutingResult {
  /// Physical circuit over device qubits; every two-qubit gate acts on a
  /// coupled pair. Inserted SWAPs are explicit kSwap gates.
  QuantumCircuit circuit;
  /// initial_layout[logical] = physical qubit before the first gate.
  std::vector<int> initial_layout;
  /// final_layout[logical] = physical qubit after the last gate.
  std::vector<int> final_layout;
  int num_swaps = 0;
};

/// Chooses an initial layout: a dense connected region of the device,
/// with interaction-heavy logical qubits placed near each other.
StatusOr<std::vector<int>> ChooseInitialLayout(const QuantumCircuit& logical,
                                               const CouplingGraph& device,
                                               Rng& rng);

/// Routes `logical` onto `device` starting from `initial_layout`,
/// inserting SWAPs per the chosen strategy. Fails if the device has fewer
/// qubits than the circuit or the layout is invalid.
StatusOr<RoutingResult> RouteCircuit(const QuantumCircuit& logical,
                                     const CouplingGraph& device,
                                     const std::vector<int>& initial_layout,
                                     RoutingStrategy strategy, Rng& rng);

/// True if every two-qubit gate of `circuit` acts on an edge of `device`.
bool IsProperlyRouted(const QuantumCircuit& circuit,
                      const CouplingGraph& device);

}  // namespace qjo

#endif  // QJO_TRANSPILER_ROUTING_H_

#ifndef QJO_TRANSPILER_NATIVE_GATES_H_
#define QJO_TRANSPILER_NATIVE_GATES_H_

#include "circuit/circuit.h"
#include "util/statusor.h"

namespace qjo {

/// Native gate sets of the vendors modelled in the paper (Sec. 6.2):
///   IBM          {RZ, SX, X, CX}
///   Rigetti      {RZ, RX, CZ}
///   IonQ         {1-qubit rotations, MS (XX)}
///   Unrestricted  every gate is native (the paper's hypothetical QPU)
enum class NativeGateSet { kIbm, kRigetti, kIonq, kUnrestricted };

const char* NativeGateSetName(NativeGateSet set);

/// True if `type` is natively supported by `set`.
bool IsNativeGate(NativeGateSet set, GateType type);

/// Rewrites a circuit into an equivalent one (up to global phase) that
/// only uses gates from the native set, then merges consecutive
/// same-axis rotations on the same qubit. Two-qubit gates keep their
/// operand pair, so routing validity is preserved.
StatusOr<QuantumCircuit> DecomposeToNative(const QuantumCircuit& circuit,
                                           NativeGateSet set);

/// Peephole pass: merges adjacent same-type rotation gates on identical
/// operands and drops rotations with angle ~ 0 (mod 4pi handling left to
/// the simulator). Exposed for testing.
QuantumCircuit MergeRotations(const QuantumCircuit& circuit);

}  // namespace qjo

#endif  // QJO_TRANSPILER_NATIVE_GATES_H_

#include "transpiler/transpiler.h"

namespace qjo {

StatusOr<TranspileResult> Transpile(const QuantumCircuit& logical,
                                    const CouplingGraph& device,
                                    const TranspileOptions& options) {
  Rng rng(options.seed);
  QJO_ASSIGN_OR_RETURN(std::vector<int> layout,
                       ChooseInitialLayout(logical, device, rng));
  QJO_ASSIGN_OR_RETURN(
      RoutingResult routed,
      RouteCircuit(logical, device, layout, options.routing, rng));
  QJO_ASSIGN_OR_RETURN(QuantumCircuit native,
                       DecomposeToNative(routed.circuit, options.gate_set));

  TranspileResult result;
  result.initial_layout = std::move(routed.initial_layout);
  result.final_layout = std::move(routed.final_layout);
  result.num_swaps = routed.num_swaps;
  result.depth = native.Depth();
  result.two_qubit_gate_count = native.CountTwoQubitGates();
  result.circuit = std::move(native);
  return result;
}

}  // namespace qjo
